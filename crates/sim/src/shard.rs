//! Device-sharded poll plane: the demand-gating parked set split into
//! per-device-range segments that elapse in lock-step between dispatched
//! events.
//!
//! # Epoch barrier protocol
//!
//! Sharded execution ([`ExecMode::Sharded`](crate::ExecMode)) partitions
//! the population into `shards` contiguous id ranges. Each shard owns the
//! parked poll chains of its devices — the segment of the sequential
//! kernel's single parked deque that belongs to that id range. Parked
//! wake times are quantized to the `now + k·repoll_ms` grid, so the next
//! dispatched event's `(time, seq)` key is a free conservative lookahead
//! bound: *every* parked poll with a smaller key must elapse before that
//! event runs, and none of those elapses can schedule anything at or
//! before its own instant. The barrier is therefore exact, never
//! speculative, and requires no rollback.
//!
//! Per barrier window, each shard scans its eligible prefix locally (for
//! large windows the per-entry resolution fans out over the vendored
//! rayon shim's worker threads — the per-shard outboxes are disjoint and
//! the device pool is only read), and the per-shard effect streams are
//! then merged into one totally ordered stream by `(time, seq)` before
//! any shared state runs:
//!
//! * **seq reservations** for continuation polls are drawn from the
//!   shared event-queue counter in merged order, so every reserved seq is
//!   bit-identical to the sequential arm's;
//! * **check-in supply observations** are accumulated (in merged order,
//!   at original timestamps) and replayed into the shared scheduler in
//!   one [`Scheduler::replay_check_ins`](venn_core::Scheduler) batch
//!   before the barrier event dispatches;
//! * **retire notes** go to the device pool as each merged entry is
//!   applied (the retire heap orders by `(session_end, device)`, so it is
//!   insertion-order independent by construction).
//!
//! Because merge keys are globally unique (seqs are never reused), the
//! merged stream is a permutation-free total order — `debug_assert`ed on
//! every applied entry and pinned by the merge-determinism property test.
//!
//! # Cached session ends
//!
//! Entries cache their device's session end and capacity at park time so
//! the elapse loop runs without touching the pool. Sessions only ever
//! *extend* (`DevicePool::begin_session` takes the max), so a cached end
//! can under-estimate but never over-estimate — an "alive" verdict from
//! the cache is always correct, while any "dead" verdict is confirmed
//! against the authoritative pool value first. The one way a session can
//! shrink is an environment fault (`force_offline`); those bump
//! [`ShardPlane::bump_gen`], which invalidates every cached end at once
//! (each entry re-reads the pool on its next elapse). Capacities are
//! immutable per device, so that half of the cache needs no
//! invalidation.

use std::collections::VecDeque;

use rayon::prelude::*;

use venn_core::{Capacity, CheckInRecord, DeviceId, DeviceInfo, SimTime};

use crate::device_pool::DevicePool;
use crate::event::{EventKind, EventQueue};

/// Minimum number of poll elapses in one barrier window before the
/// per-entry resolution pass fans out to worker threads. Typical windows
/// between dispatched events elapse a handful of polls — spawning a
/// thread scope for those would cost more than the work itself — while
/// overnight lulls and wake storms elapse tens of thousands at once,
/// which is where the threads (and the batched scan) pay off.
pub const PAR_THRESHOLD: usize = 4096;

/// Front-key sentinel for an idle shard: compares above every real
/// `(time, seq)` key, so the merge scans need no emptiness branch.
const EMPTY_KEY: (SimTime, u64) = (SimTime::MAX, u64::MAX);

/// One parked poll owned by a shard: the `(time, seq)` identity the
/// suppressed check-in would have carried, plus cached device facts that
/// keep the steady-state elapse loop free of pool lookups.
#[derive(Debug, Clone, Copy)]
struct ShardEntry {
    /// When the suppressed check-in would have fired.
    time: SimTime,
    /// The insertion seq it would have carried (reserved, never reused).
    seq: u64,
    /// Session end cached at entry creation. Trustworthy for "alive"
    /// verdicts while `gen` is current; any "dead" verdict re-reads the
    /// pool (see module docs).
    end: SimTime,
    /// The polling device.
    device: u32,
    /// [`ShardPlane::global_gen`] at cache time.
    gen: u32,
    /// The device's immutable capacity, for replayed observations.
    cap: Capacity,
}

impl ShardEntry {
    fn key(&self) -> (SimTime, u64) {
        (self.time, self.seq)
    }
}

/// One device-range shard: its segment of the parked poll set plus the
/// persistent outbox scratch used by the bulk (large-window) path.
#[derive(Debug, Default)]
struct Shard {
    /// Parked polls of this shard's devices, ascending by `(time, seq)`.
    /// The ordering is maintained with plain `push_back`s for the same
    /// reason as the sequential arm's single deque: every new entry is
    /// created `repoll_ms` after a non-decreasing stream position.
    q: VecDeque<ShardEntry>,
    /// The eligible prefix of `q` for the current barrier window, moved
    /// out by the bulk path's scan and cleared (capacity retained) after
    /// the merge — per-epoch scratch, not per-epoch allocation.
    outbox: Vec<ShardEntry>,
}

/// The sharded poll plane: all shards plus the merge/observation scratch.
///
/// Owned by the [`World`](crate::world::World) when
/// [`ExecMode::Sharded`](crate::ExecMode) is selected; the sequential
/// arm keeps its single parked deque and never constructs one of these.
#[derive(Debug)]
pub struct ShardPlane {
    shards: Box<[Shard]>,
    population: usize,
    /// Bumped by every forced-offline fault — the one event that can
    /// shrink a session and thus invalidate cached ends.
    global_gen: u32,
    /// Check-in observations of the current barrier window, in merged
    /// `(time, seq)` order. Persistent scratch: the world replays it into
    /// the scheduler and clears it (capacity retained) per window.
    obs: Vec<CheckInRecord>,
    /// Per-shard merge cursors into the outboxes (bulk path scratch).
    cursors: Vec<usize>,
    /// Key of the last merged elapse — enforces that the merged
    /// cross-shard stream is a strictly increasing `(time, seq)` total
    /// order.
    last_key: (SimTime, u64),
    /// Per-shard cache of the front entry's `(time, seq)` key
    /// ([`EMPTY_KEY`] when the shard is idle). The merge loops scan this
    /// flat array instead of dereferencing every deque front on every
    /// elapse — maintained at each push/pop site.
    fronts: Vec<(SimTime, u64)>,
    /// Lower bound on the minimum front key across all shards: [`advance`]
    /// (Self::advance) is called at every event boundary, and almost all
    /// of those calls find nothing eligible — this turns them into one
    /// comparison instead of a k-way scan. Pops only raise the true
    /// minimum, so the bound stays valid until the next park lowers it;
    /// the scans re-tighten it whenever they come up empty.
    min_front: (SimTime, u64),
    /// Whether the bulk resolve pass may fan out to worker threads.
    /// Decided once per plane from the machine's core count: on a
    /// single-core host the thread scope is pure overhead, and the
    /// serial in-place resolve is also allocation-free. Results are
    /// byte-identical either way — this picks an execution strategy,
    /// never an outcome.
    par_resolve: bool,
}

impl ShardPlane {
    /// An empty plane for `population` devices split into `shards`
    /// contiguous id ranges.
    pub fn new(population: usize, shards: u32) -> Self {
        let n = (shards as usize).max(1);
        ShardPlane {
            shards: (0..n).map(|_| Shard::default()).collect(),
            population: population.max(1),
            global_gen: 0,
            obs: Vec::new(),
            cursors: vec![0; n],
            last_key: (0, 0),
            fronts: vec![EMPTY_KEY; n],
            min_front: EMPTY_KEY,
            par_resolve: std::thread::available_parallelism().is_ok_and(|p| p.get() > 1),
        }
    }

    /// Forces the threaded bulk-resolve path on regardless of the host's
    /// core count. Test hook: lets single-core machines still exercise
    /// the parallel pass (which must be byte-identical to the serial
    /// one).
    #[doc(hidden)]
    pub fn force_parallel_resolve(&mut self) {
        self.par_resolve = true;
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning `device` (contiguous id ranges).
    fn shard_of(&self, device: usize) -> usize {
        device * self.shards.len() / self.population
    }

    /// Whether no poll is parked anywhere.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.q.is_empty())
    }

    /// Total parked polls across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.q.len()).sum()
    }

    /// Parks a suppressed check-in on its owner shard. `end` is the
    /// device's current session end and `cap` its (immutable) capacity —
    /// the cached facts that keep elapses pool-free.
    pub fn park(&mut self, device: usize, time: SimTime, seq: u64, end: SimTime, cap: Capacity) {
        let shard = self.shard_of(device);
        let entry = ShardEntry {
            time,
            seq,
            end,
            device: device as u32,
            gen: self.global_gen,
            cap,
        };
        debug_assert!(
            self.shards[shard]
                .q
                .back()
                .map_or(true, |b| b.key() < entry.key()),
            "per-shard parked order must stay ascending by (time, seq)"
        );
        self.shards[shard].q.push_back(entry);
        if self.shards[shard].q.len() == 1 {
            self.fronts[shard] = entry.key();
        }
        if entry.key() < self.min_front {
            self.min_front = entry.key();
        }
    }

    /// Invalidates every cached session end: an environment fault forced
    /// a device offline, the one transition that can shrink a session.
    pub fn bump_gen(&mut self) {
        self.global_gen = self.global_gen.wrapping_add(1);
    }

    /// Check-in observations accumulated by [`advance`](Self::advance),
    /// in merged stream order.
    pub fn observations(&self) -> &[CheckInRecord] {
        &self.obs
    }

    /// Clears the observation batch after the world replayed it
    /// (capacity retained).
    pub fn clear_observations(&mut self) {
        self.obs.clear();
    }

    /// Elapses every parked poll with key below the barrier `(time, seq)`
    /// — the event about to be dispatched — in exact merged stream order.
    ///
    /// Mirrors the sequential kernel's `advance_parked` effect for
    /// effect: deaths file retire notes, observing schedulers get their
    /// suppressed check-ins (batched into [`observations`](Self::observations)
    /// for the caller to replay), and each surviving chain re-parks its
    /// continuation under a seq reserved at this very stream position.
    #[allow(clippy::too_many_arguments)]
    pub fn advance(
        &mut self,
        time: SimTime,
        seq: u64,
        horizon: SimTime,
        repoll_ms: SimTime,
        devices: &mut DevicePool,
        queue: &mut EventQueue,
        observes: bool,
    ) {
        let barrier = (time, seq);
        // The every-event early-out: nothing parked anywhere elapses
        // before this barrier.
        if self.min_front >= barrier {
            return;
        }
        // Fast path: k-way merge over the cached front keys. One scan
        // finds the minimum *and* the runner-up, and the winning shard
        // then drains a whole run — every front below the runner-up is
        // globally minimal — without rescanning. Typical windows elapse
        // a handful of polls; anything bigger falls through to the
        // batched bulk path below.
        let mut budget = PAR_THRESHOLD;
        loop {
            let mut best: Option<usize> = None;
            let mut best_key = barrier;
            let mut runner_up = barrier;
            for (i, &k) in self.fronts.iter().enumerate() {
                if k < best_key {
                    runner_up = best_key;
                    best_key = k;
                    best = Some(i);
                } else if k < runner_up {
                    runner_up = k;
                }
            }
            let Some(i) = best else {
                // Every front sits at or past the barrier: the scan's
                // minimum is exact, re-tighten the early-out bound.
                self.min_front = self.fronts.iter().copied().min().unwrap_or(EMPTY_KEY);
                return;
            };
            // The global minimum has the minimum time, so if it sits
            // past the horizon every other front does too — exactly the
            // sequential arm's break condition.
            if best_key.0 > horizon {
                self.min_front = best_key;
                return;
            }
            loop {
                let e = self.shards[i].q.pop_front().expect("cached front key");
                self.fronts[i] = front_key(&self.shards[i].q);
                // `apply` may re-park the continuation onto this same
                // shard (the device does not move), which refreshes
                // `fronts[i]` through `park` if the deque was empty.
                self.apply(e, false, repoll_ms, devices, queue, observes);
                budget -= 1;
                if budget == 0 {
                    self.advance_bulk(barrier, horizon, repoll_ms, devices, queue, observes);
                    return;
                }
                let k = self.fronts[i];
                if k >= runner_up || k.0 > horizon {
                    break;
                }
            }
        }
    }

    /// Large-window path: per-shard prefix scans into the outboxes, a
    /// (parallel, read-only) resolution pass over the cached ends, then
    /// one serial `(time, seq)` merge applying the effects. Loops because
    /// continuations may elapse again within the same window.
    #[allow(clippy::too_many_arguments)]
    fn advance_bulk(
        &mut self,
        barrier: (SimTime, u64),
        horizon: SimTime,
        repoll_ms: SimTime,
        devices: &mut DevicePool,
        queue: &mut EventQueue,
        observes: bool,
    ) {
        loop {
            // Scan: move each shard's eligible prefix into its outbox.
            let mut total = 0;
            for (i, s) in self.shards.iter_mut().enumerate() {
                debug_assert!(s.outbox.is_empty(), "outbox cleared after every merge");
                while let Some(f) = s.q.front() {
                    if f.key() < barrier && f.time <= horizon {
                        s.outbox.push(s.q.pop_front().expect("front just observed"));
                    } else {
                        break;
                    }
                }
                self.fronts[i] = front_key(&s.q);
                total += s.outbox.len();
            }
            if total == 0 {
                // Every remaining front is at or past the barrier and the
                // fronts cache is freshly exact: re-tighten the bound.
                self.min_front = self.fronts.iter().copied().min().unwrap_or(EMPTY_KEY);
                return;
            }
            // Resolve: make every entry's cached end sufficient on its
            // own — entries the cache cannot prove alive re-read the
            // pool. Pool access is read-only here, so big windows fan the
            // pass out over worker threads (each thread owns whole
            // disjoint outboxes; order within each is untouched).
            let gen = self.global_gen;
            if self.par_resolve && total >= PAR_THRESHOLD && self.shards.len() > 1 {
                let pool: &DevicePool = devices;
                let outboxes: Vec<Vec<ShardEntry>> = self
                    .shards
                    .iter_mut()
                    .map(|s| std::mem::take(&mut s.outbox))
                    .collect();
                let resolved: Vec<Vec<ShardEntry>> = outboxes
                    .into_par_iter()
                    .map(|mut ob| {
                        for e in ob.iter_mut() {
                            resolve_entry(e, gen, repoll_ms, pool);
                        }
                        ob
                    })
                    .collect();
                for (s, ob) in self.shards.iter_mut().zip(resolved) {
                    s.outbox = ob;
                }
            } else {
                for s in self.shards.iter_mut() {
                    for e in s.outbox.iter_mut() {
                        resolve_entry(e, gen, repoll_ms, devices);
                    }
                }
            }
            // Merge: apply the outbox entries in (time, seq) order, with
            // the same runner-up run-draining as the fast path (every
            // outbox entry already passed the barrier/horizon filter).
            self.cursors.fill(0);
            loop {
                let mut best: Option<usize> = None;
                let mut best_key = barrier;
                let mut runner_up = barrier;
                for (i, s) in self.shards.iter().enumerate() {
                    if let Some(e) = s.outbox.get(self.cursors[i]) {
                        let k = e.key();
                        if k < best_key {
                            runner_up = best_key;
                            best_key = k;
                            best = Some(i);
                        } else if k < runner_up {
                            runner_up = k;
                        }
                    }
                }
                let Some(i) = best else {
                    break;
                };
                loop {
                    let e = self.shards[i].outbox[self.cursors[i]];
                    self.cursors[i] += 1;
                    self.apply(e, true, repoll_ms, devices, queue, observes);
                    match self.shards[i].outbox.get(self.cursors[i]) {
                        Some(n) if n.key() < runner_up => {}
                        _ => break,
                    }
                }
            }
            for s in self.shards.iter_mut() {
                s.outbox.clear();
            }
        }
    }

    /// Applies one merged elapse: death check, suppressed-check-in
    /// observation, and continuation park — the sharded equivalent of one
    /// sequential `advance_parked` iteration. `resolved` marks entries
    /// whose cached end already went through [`resolve_entry`] (bulk
    /// path) and thus never needs re-reading here.
    fn apply(
        &mut self,
        e: ShardEntry,
        resolved: bool,
        repoll_ms: SimTime,
        devices: &mut DevicePool,
        queue: &mut EventQueue,
        observes: bool,
    ) {
        let key = e.key();
        // The total-order pin: merged cross-shard elapses form one
        // strictly increasing (time, seq) stream, no permutations.
        debug_assert!(
            key > self.last_key || self.last_key == (0, 0),
            "merged poll stream must be a strictly increasing (time, seq) order"
        );
        self.last_key = key;
        let device = e.device as usize;
        // A stale generation means a fault may have shrunk the session:
        // the cache is untrustworthy in both directions, re-read now.
        let mut confirmed = resolved || e.gen != self.global_gen;
        let mut end = if !resolved && e.gen != self.global_gen {
            devices.session_end(device)
        } else {
            e.end
        };
        if e.time >= end {
            if !confirmed {
                // Cached ends only under-estimate (sessions extend, never
                // shrink, between generation bumps): confirm the death
                // verdict against the pool before killing the chain.
                end = devices.session_end(device);
                confirmed = true;
            }
            if e.time >= end {
                // The un-gated arm's check-in at `e.time` would fail
                // `can_check_in` and observe nothing: the chain dies.
                devices.note_possible_retire(device, e.time);
                return;
            }
        }
        if observes {
            self.obs.push(CheckInRecord {
                time: e.time,
                device: DeviceInfo::new(DeviceId::new(e.device as u64), e.cap),
            });
        }
        let next = e.time + repoll_ms;
        if next >= end && !confirmed {
            // Same under-estimation rule before ending the chain early.
            end = devices.session_end(device);
        }
        if next < end {
            let seq = queue.reserve_seq();
            let shard = self.shard_of(device);
            let entry = ShardEntry {
                time: next,
                seq,
                end,
                device: e.device,
                gen: self.global_gen,
                cap: e.cap,
            };
            self.shards[shard].q.push_back(entry);
            if self.shards[shard].q.len() == 1 {
                self.fronts[shard] = entry.key();
            }
            if entry.key() < self.min_front {
                self.min_front = entry.key();
            }
        } else {
            // Last grid poll of the session: the chain dies here.
            devices.note_possible_retire(device, e.time);
        }
    }

    /// Every parked poll as `(time, seq, device)`, merged across shards
    /// into `(time, seq)` order — the canonical, shard-count-agnostic
    /// snapshot form. Cached session ends and capacities are
    /// deliberately dropped: they are pure caches of device-pool facts,
    /// re-derived at re-park time, so a snapshot taken under `shards=4`
    /// restores bit-identically under any shard count (or the sequential
    /// arm).
    pub fn snapshot_polls(&self) -> Vec<(SimTime, u64, u32)> {
        let mut polls: Vec<(SimTime, u64, u32)> = self
            .shards
            .iter()
            .flat_map(|s| s.q.iter().map(|e| (e.time, e.seq, e.device)))
            .collect();
        polls.sort_unstable();
        polls
    }

    /// Demand just opened: every parked poll re-enters the event queue at
    /// its reserved `(time, seq)` position, drained across shards in
    /// merged order — byte-identical pushes to the sequential arm's
    /// single-deque drain.
    pub fn wake(&mut self, queue: &mut EventQueue) {
        loop {
            let mut best: Option<usize> = None;
            let mut best_key = EMPTY_KEY;
            let mut runner_up = EMPTY_KEY;
            for (i, &k) in self.fronts.iter().enumerate() {
                if k < best_key {
                    runner_up = best_key;
                    best_key = k;
                    best = Some(i);
                } else if k < runner_up {
                    runner_up = k;
                }
            }
            let Some(i) = best else {
                // Fully drained: nothing parked anywhere.
                self.min_front = EMPTY_KEY;
                return;
            };
            loop {
                let e = self.shards[i].q.pop_front().expect("cached front key");
                self.fronts[i] = front_key(&self.shards[i].q);
                queue.push_reserved(
                    e.time,
                    e.seq,
                    EventKind::CheckIn {
                        device: e.device as usize,
                    },
                );
                if self.fronts[i] >= runner_up {
                    break;
                }
            }
        }
    }
}

/// The front entry's key, or the [`EMPTY_KEY`] sentinel for an idle
/// shard — the value the `fronts` cache holds for that shard.
fn front_key(q: &VecDeque<ShardEntry>) -> (SimTime, u64) {
    q.front().map_or(EMPTY_KEY, |f| f.key())
}

/// Makes one entry's cached end self-sufficient for the merge: if the
/// cache cannot prove the whole elapse alive (fresh generation, check-in
/// and continuation both strictly inside the session), the authoritative
/// end is re-read from the pool. Pure per entry — safe to run on worker
/// threads over disjoint outboxes.
fn resolve_entry(e: &mut ShardEntry, gen: u32, repoll_ms: SimTime, pool: &DevicePool) {
    let alive_on_cache = e.gen == gen && e.time < e.end && e.time + repoll_ms < e.end;
    if !alive_on_cache {
        e.end = pool.session_end(e.device as usize);
        e.gen = gen;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::QueueKind;
    use venn_traces::CapacityModel;

    fn cap(x: f64) -> Capacity {
        Capacity::new(x, x)
    }

    fn pool(n: usize, session_end: SimTime) -> DevicePool {
        let mut p = DevicePool::lazy(CapacityModel::default(), 7, n);
        for d in 0..n {
            p.begin_session(d, session_end);
        }
        p
    }

    #[test]
    fn shard_ranges_are_contiguous_and_cover_the_population() {
        let plane = ShardPlane::new(10, 3);
        let owners: Vec<usize> = (0..10).map(|d| plane.shard_of(d)).collect();
        assert_eq!(owners, vec![0, 0, 0, 0, 1, 1, 1, 2, 2, 2]);
        let one = ShardPlane::new(5, 1);
        assert!((0..5).all(|d| one.shard_of(d) == 0));
    }

    #[test]
    fn wake_drains_across_shards_in_time_seq_order() {
        let mut plane = ShardPlane::new(9, 3);
        let mut queue = EventQueue::with_kind(QueueKind::Heap);
        // Park out of device order but in per-shard key order.
        for (device, time) in [(0usize, 500u64), (4, 200), (8, 200), (1, 900), (5, 650)] {
            let seq = queue.reserve_seq();
            plane.park(device, time, seq, 10_000, cap(0.5));
        }
        plane.wake(&mut queue);
        assert!(plane.is_empty());
        let mut popped = Vec::new();
        while let Some(e) = queue.pop() {
            popped.push((e.time, e.seq));
        }
        let mut sorted = popped.clone();
        sorted.sort_unstable();
        assert_eq!(
            popped, sorted,
            "wake must re-enter the queue in (time, seq) order"
        );
        assert_eq!(popped.len(), 5);
    }

    /// The bulk path (scan → resolve → merge) and the direct path must
    /// produce identical observation streams and identical continuation
    /// states — exercised well past `PAR_THRESHOLD` so the parallel
    /// resolve runs for real.
    #[test]
    fn bulk_and_direct_paths_agree_past_the_parallel_threshold() {
        let n = 2 * PAR_THRESHOLD; // two laps of elapses per chain below
        let run = |shards: u32| {
            let mut plane = ShardPlane::new(n, shards);
            // Even on a single-core test host, run the threaded resolve
            // for real — its output must match the serial path's.
            plane.force_parallel_resolve();
            let mut queue = EventQueue::with_kind(QueueKind::Heap);
            let mut devices = pool(n, 1_000_000);
            for d in 0..n {
                let seq = queue.reserve_seq();
                // Non-decreasing times (parks always arrive in stream
                // order), with plateaus wide enough that same-time
                // entries span shard boundaries — the seq tie-break must
                // arbitrate across shards.
                let time = 60_000 + (d / (n / 4)) as u64 * 30;
                plane.park(d, time, seq, 1_000_000, cap(0.5));
            }
            // One big barrier window: every chain elapses twice.
            plane.advance(
                150_000,
                u64::MAX,
                2_000_000,
                60_000,
                &mut devices,
                &mut queue,
                true,
            );
            let obs: Vec<(SimTime, u64)> = plane
                .observations()
                .iter()
                .map(|r| (r.time, r.device.id().as_u64()))
                .collect();
            plane.clear_observations();
            plane.wake(&mut queue);
            let mut stream = Vec::new();
            while let Some(e) = queue.pop() {
                stream.push((e.time, e.seq));
            }
            (obs, stream)
        };
        let single = run(1);
        for shards in [2, 4, 7] {
            assert_eq!(run(shards), single, "shards={shards}");
        }
        assert_eq!(single.0.len(), 2 * n, "each chain elapses exactly twice");
    }

    #[test]
    fn stale_generation_rereads_the_pool() {
        let mut plane = ShardPlane::new(4, 2);
        let mut queue = EventQueue::with_kind(QueueKind::Heap);
        let mut devices = pool(4, 500_000);
        let seq = queue.reserve_seq();
        plane.park(1, 100_000, seq, 500_000, cap(0.5));
        // A fault forces the device offline after it parked: the cached
        // end (500_000) now over-estimates.
        devices.force_offline(1, 50_000);
        plane.bump_gen();
        plane.advance(
            200_000,
            u64::MAX,
            1_000_000,
            60_000,
            &mut devices,
            &mut queue,
            true,
        );
        assert!(
            plane.observations().is_empty(),
            "dead chain must not observe"
        );
        assert!(plane.is_empty(), "chain must die, not re-park");
    }
}
