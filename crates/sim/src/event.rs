//! The simulation event queue: a hierarchical timing wheel with a
//! heap-backed reference arm.
//!
//! ## Total order
//!
//! Events are totally ordered by `(time, seq)`: time in simulated
//! milliseconds, `seq` a monotonically increasing insertion number that
//! makes simultaneous events fire in a deterministic order. Both queue
//! arms ([`QueueKind::Wheel`] and [`QueueKind::Heap`]) pop the exact same
//! sequence for the same pushes — pinned by the property tests in
//! `tests/queue_equivalence.rs` — so the wheel is a pure cost
//! optimization, never a behavior change.
//!
//! ## Why a wheel
//!
//! The kernel funnels ~10M events per run through this queue, and the
//! binary heap pays `O(log n)` comparator walks on a queue that holds
//! every future availability session (tens of thousands of entries) from
//! initialization. The wheel buckets events by millisecond digit instead:
//!
//! * **Tier 0** — 256 one-millisecond slots covering the current 256 ms
//!   epoch; a slot holds the events of exactly one timestamp-digit.
//! * **Tiers 1–3** — 256 slots each of width 256^tier ms. An event lands
//!   in the lowest tier whose digits above it match the cursor, and
//!   cascades one tier down each time the cursor enters its slot — at
//!   most 3 moves per event, amortized O(1).
//! * **Overflow tier** — events beyond tier 3's ~49-day range (only
//!   reachable in synthetic tests) fall back to the reference heap and
//!   re-enter the wheel epoch by epoch.
//!
//! Per-tier occupancy bitmaps (256 bits) let the cursor skip empty slots
//! with `trailing_zeros` instead of scanning, so a quiet simulated hour
//! costs a handful of word reads, not thousands of slot probes.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use venn_core::{JobId, SimTime, SnapError, SnapReader, SnapWriter, Snapshot};

/// What happens at an event's firing time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A job from the workload arrives and submits its first round.
    JobArrival { job_idx: usize },
    /// A device availability session begins.
    SessionStart { device: usize, session_end: SimTime },
    /// A scheduled `venn-env` disturbance (mass-offline wave, scripted
    /// device fault, or abort storm) fires; the payload indexes the
    /// compiled environment's disturbance schedule. Never emitted on the
    /// env-off arm.
    EnvDisturbance { env_idx: usize },
    /// An online, idle device polls the resource manager.
    CheckIn { device: usize },
    /// A held (allocated but not yet computing) device's session ends.
    HoldExpire {
        job: JobId,
        epoch: u32,
        device: usize,
        /// The device's hold-generation counter at hold time. A fault
        /// can now release a hold *early* (forced offline), so the
        /// expiry must prove it still refers to the same hold instance
        /// before releasing — on the env-off arm the counter check is
        /// always true exactly when the phase/epoch guards pass.
        hold_seq: u64,
    },
    /// A device finishes its task and reports back.
    Response {
        job: JobId,
        epoch: u32,
        device: usize,
        response_ms: u64,
    },
    /// A device departed before finishing its task.
    AssignFailure {
        job: JobId,
        epoch: u32,
        device: usize,
    },
    /// The deadline of a round request fires.
    RoundDeadline { job: JobId, epoch: u32 },
    /// A job starts its next round (after aggregation or an abort).
    RoundStart { job_idx: usize },
    /// The next session start of a device cohort is due (streamed split
    /// population modes only): the world drains every due device from the
    /// cohort's session heap, begins their sessions, and re-arms one wake
    /// at the cohort's new earliest start. Never emitted on the eager arm.
    CohortWake { cohort: usize },
}

/// A scheduled event. Ordered by time, then by insertion sequence so
/// simultaneous events fire in a deterministic order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Firing time.
    pub time: SimTime,
    /// Tie-breaking insertion sequence number.
    pub seq: u64,
    /// Payload.
    pub kind: EventKind,
}

impl Snapshot for EventKind {
    fn encode(&self, w: &mut SnapWriter) {
        match *self {
            EventKind::JobArrival { job_idx } => {
                w.u8(0);
                w.usize(job_idx);
            }
            EventKind::SessionStart {
                device,
                session_end,
            } => {
                w.u8(1);
                w.usize(device);
                w.u64(session_end);
            }
            EventKind::EnvDisturbance { env_idx } => {
                w.u8(2);
                w.usize(env_idx);
            }
            EventKind::CheckIn { device } => {
                w.u8(3);
                w.usize(device);
            }
            EventKind::HoldExpire {
                job,
                epoch,
                device,
                hold_seq,
            } => {
                w.u8(4);
                w.u64(job.as_u64());
                w.u32(epoch);
                w.usize(device);
                w.u64(hold_seq);
            }
            EventKind::Response {
                job,
                epoch,
                device,
                response_ms,
            } => {
                w.u8(5);
                w.u64(job.as_u64());
                w.u32(epoch);
                w.usize(device);
                w.u64(response_ms);
            }
            EventKind::AssignFailure { job, epoch, device } => {
                w.u8(6);
                w.u64(job.as_u64());
                w.u32(epoch);
                w.usize(device);
            }
            EventKind::RoundDeadline { job, epoch } => {
                w.u8(7);
                w.u64(job.as_u64());
                w.u32(epoch);
            }
            EventKind::RoundStart { job_idx } => {
                w.u8(8);
                w.usize(job_idx);
            }
            EventKind::CohortWake { cohort } => {
                w.u8(9);
                w.usize(cohort);
            }
        }
    }

    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => EventKind::JobArrival {
                job_idx: r.usize()?,
            },
            1 => EventKind::SessionStart {
                device: r.usize()?,
                session_end: r.u64()?,
            },
            2 => EventKind::EnvDisturbance {
                env_idx: r.usize()?,
            },
            3 => EventKind::CheckIn { device: r.usize()? },
            4 => EventKind::HoldExpire {
                job: JobId::new(r.u64()?),
                epoch: r.u32()?,
                device: r.usize()?,
                hold_seq: r.u64()?,
            },
            5 => EventKind::Response {
                job: JobId::new(r.u64()?),
                epoch: r.u32()?,
                device: r.usize()?,
                response_ms: r.u64()?,
            },
            6 => EventKind::AssignFailure {
                job: JobId::new(r.u64()?),
                epoch: r.u32()?,
                device: r.usize()?,
            },
            7 => EventKind::RoundDeadline {
                job: JobId::new(r.u64()?),
                epoch: r.u32()?,
            },
            8 => EventKind::RoundStart {
                job_idx: r.usize()?,
            },
            9 => EventKind::CohortWake { cohort: r.usize()? },
            other => {
                return Err(SnapError::Corrupt(format!("event kind tag {other}")));
            }
        })
    }
}

impl Snapshot for Event {
    fn encode(&self, w: &mut SnapWriter) {
        w.u64(self.time);
        w.u64(self.seq);
        self.kind.encode(w);
    }

    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Event {
            time: r.u64()?,
            seq: r.u64()?,
            kind: EventKind::decode(r)?,
        })
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so BinaryHeap pops the *earliest* event.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Which queue implementation backs an [`EventQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueKind {
    /// Hierarchical timing wheel — O(1) push/pop on the simulator's
    /// ms-granularity time axis. The default.
    #[default]
    Wheel,
    /// Binary heap — the reference arm the wheel is proven equivalent to.
    Heap,
}

const SLOT_BITS: u32 = 8;
const SLOTS: usize = 1 << SLOT_BITS;
/// Wheel tiers below the overflow heap. Tier `l` slots are `256^l` ms
/// wide, so four tiers cover `256^4` ms ≈ 49.7 days from the cursor.
const TIERS: usize = 4;

fn digit(t: SimTime, tier: usize) -> usize {
    ((t >> (SLOT_BITS * tier as u32)) & (SLOTS as u64 - 1)) as usize
}

/// The hierarchical timing wheel arm.
#[derive(Debug, Default)]
struct TimingWheel {
    /// Cursor: the timestamp currently being drained. All queued events
    /// have `time >= now`; events with `time == now` live in `current`.
    now: SimTime,
    /// Events at `time == now`, sorted by `seq`; `current[..pos]` are
    /// already popped.
    current: Vec<Event>,
    pos: usize,
    /// `TIERS × SLOTS` buckets (tier-major).
    slots: Vec<Vec<Event>>,
    /// Occupancy bitmap per tier: bit `s` set iff `slots[tier][s]` is
    /// non-empty.
    occupied: Vec<[u64; SLOTS / 64]>,
    /// Events beyond tier 3's range, kept in the reference heap until
    /// their 2^32 ms epoch begins.
    overflow: BinaryHeap<Event>,
}

impl TimingWheel {
    fn new() -> Self {
        TimingWheel {
            slots: (0..TIERS * SLOTS).map(|_| Vec::new()).collect(),
            occupied: vec![[0; SLOTS / 64]; TIERS],
            ..TimingWheel::default()
        }
    }

    /// Files one event: the drain buffer for `time == now`, the lowest
    /// tier whose higher digits match the cursor otherwise, the overflow
    /// heap past the wheel's range.
    fn place(&mut self, e: Event) {
        debug_assert!(
            e.time > self.now || (e.time == self.now && self.pos <= self.current.len()),
            "event scheduled in the past"
        );
        if e.time == self.now {
            // Same-timestamp insert during a drain: keep `current` sorted
            // by seq past the already-popped prefix.
            let at = self.current[self.pos..].partition_point(|x| x.seq < e.seq) + self.pos;
            self.current.insert(at, e);
            return;
        }
        for tier in 0..TIERS {
            if e.time >> (SLOT_BITS * (tier as u32 + 1))
                == self.now >> (SLOT_BITS * (tier as u32 + 1))
            {
                let s = digit(e.time, tier);
                self.slots[tier * SLOTS + s].push(e);
                self.occupied[tier][s / 64] |= 1 << (s % 64);
                return;
            }
        }
        self.overflow.push(e);
    }

    fn pop(&mut self) -> Option<Event> {
        loop {
            if self.pos < self.current.len() {
                let e = self.current[self.pos];
                self.pos += 1;
                return Some(e);
            }
            if !self.advance() {
                return None;
            }
        }
    }

    /// Key `(time, seq)` of the earliest pending event, without touching
    /// the cursor or any slot — the non-destructive lookahead behind
    /// bounded draining ([`World::run_until`](crate::World::run_until)).
    ///
    /// The tier invariants make this cheap: the drain buffer (if
    /// non-empty) is earliest by construction; otherwise every tier-0
    /// slot past the cursor's digit holds exactly one timestamp, each
    /// strictly earlier than anything in tier 1+, and within a tier the
    /// first occupied slot strictly precedes later ones (its events share
    /// all digits above the tier with the cursor). So the scan touches at
    /// most one slot per tier plus the overflow heap's root.
    fn peek_key(&self) -> Option<(SimTime, u64)> {
        if self.pos < self.current.len() {
            let e = &self.current[self.pos];
            return Some((e.time, e.seq));
        }
        if let Some(s) = self.next_occupied(0, digit(self.now, 0) + 1) {
            let time = (self.now & !(SLOTS as u64 - 1)) | s as u64;
            let seq = self.slots[s]
                .iter()
                .map(|e| e.seq)
                .min()
                .expect("occupied tier-0 slot");
            return Some((time, seq));
        }
        for tier in 1..TIERS {
            if let Some(s) = self.next_occupied(tier, digit(self.now, tier) + 1) {
                // One slot spans 256^tier ms, so the minimum is over the
                // slot's own contents, by full `(time, seq)` key.
                return self.slots[tier * SLOTS + s]
                    .iter()
                    .map(|e| (e.time, e.seq))
                    .min();
            }
        }
        self.overflow.peek().map(|e| (e.time, e.seq))
    }

    /// First occupied slot of `tier` at index ≥ `from`, via the bitmap.
    fn next_occupied(&self, tier: usize, from: usize) -> Option<usize> {
        if from >= SLOTS {
            return None;
        }
        let words = &self.occupied[tier];
        let mut w = from / 64;
        let mut word = words[w] & (!0u64 << (from % 64));
        loop {
            if word != 0 {
                return Some(w * 64 + word.trailing_zeros() as usize);
            }
            w += 1;
            if w == SLOTS / 64 {
                return None;
            }
            word = words[w];
        }
    }

    /// Moves the cursor to the next non-empty timestamp and refills
    /// `current`. Returns `false` when the wheel is empty.
    fn advance(&mut self) -> bool {
        self.current.clear();
        self.pos = 0;
        loop {
            // Tier 0: the next occupied millisecond of this 256 ms epoch.
            if let Some(s) = self.next_occupied(0, digit(self.now, 0) + 1) {
                self.now = (self.now & !(SLOTS as u64 - 1)) | s as u64;
                self.current.append(&mut self.slots[s]);
                self.occupied[0][s / 64] &= !(1 << (s % 64));
                // Direct pushes and cascades interleave in a slot, so the
                // seq order is restored here, once, at drain time.
                self.current.sort_unstable_by_key(|e| e.seq);
                return true;
            }
            // Higher tiers: enter the next occupied slot and cascade its
            // events one tier down (or into `current` when they fire at
            // the slot's base timestamp).
            let mut cascaded = false;
            for tier in 1..TIERS {
                if let Some(s) = self.next_occupied(tier, digit(self.now, tier) + 1) {
                    let above = SLOT_BITS * (tier as u32 + 1);
                    self.now =
                        ((self.now >> above) << above) | ((s as u64) << (SLOT_BITS * tier as u32));
                    let mut batch = std::mem::take(&mut self.slots[tier * SLOTS + s]);
                    self.occupied[tier][s / 64] &= !(1 << (s % 64));
                    for e in batch.drain(..) {
                        self.place(e);
                    }
                    self.slots[tier * SLOTS + s] = batch; // keep capacity
                    cascaded = true;
                    break;
                }
            }
            if cascaded {
                if !self.current.is_empty() {
                    self.current.sort_unstable_by_key(|e| e.seq);
                    return true;
                }
                continue;
            }
            // Overflow: pull in the earliest pending 2^32 ms epoch.
            let Some(first) = self.overflow.peek() else {
                return false;
            };
            let epoch = first.time >> (SLOT_BITS * TIERS as u32);
            self.now = epoch << (SLOT_BITS * TIERS as u32);
            while let Some(e) = self.overflow.peek() {
                if e.time >> (SLOT_BITS * TIERS as u32) != epoch {
                    break;
                }
                let e = *e;
                self.overflow.pop();
                self.place(e);
            }
            if !self.current.is_empty() {
                self.current.sort_unstable_by_key(|e| e.seq);
                return true;
            }
        }
    }
}

#[derive(Debug)]
enum QueueImpl {
    Wheel(Box<TimingWheel>),
    Heap(BinaryHeap<Event>),
}

/// Queue of pending events with deterministic `(time, seq)` total order.
///
/// Backed by a hierarchical timing wheel by default; construct with
/// [`EventQueue::with_kind`]`(`[`QueueKind::Heap`]`)` for the binary-heap
/// reference arm. Identical pop sequences for identical pushes,
/// regardless of the arm.
#[derive(Debug)]
pub struct EventQueue {
    imp: QueueImpl,
    next_seq: u64,
    len: usize,
    peak_len: usize,
}

impl Default for EventQueue {
    fn default() -> Self {
        EventQueue::with_kind(QueueKind::default())
    }
}

impl EventQueue {
    /// Creates an empty queue on the default (wheel) arm.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Creates an empty queue on the chosen arm.
    pub fn with_kind(kind: QueueKind) -> Self {
        EventQueue {
            imp: match kind {
                QueueKind::Wheel => QueueImpl::Wheel(Box::new(TimingWheel::new())),
                QueueKind::Heap => QueueImpl::Heap(BinaryHeap::new()),
            },
            next_seq: 0,
            len: 0,
            peak_len: 0,
        }
    }

    /// The arm backing this queue.
    pub fn kind(&self) -> QueueKind {
        match self.imp {
            QueueImpl::Wheel(_) => QueueKind::Wheel,
            QueueImpl::Heap(_) => QueueKind::Heap,
        }
    }

    /// Schedules `kind` at `time`.
    pub fn push(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.reserve_seq();
        self.push_reserved(time, seq, kind);
    }

    /// Allocates the next insertion sequence number *without* scheduling
    /// an event — the demand-gating machinery reserves the seq a parked
    /// check-in would have consumed, so that a later
    /// [`push_reserved`](Self::push_reserved) wake-up ties against
    /// same-millisecond events exactly as the un-gated event stream would.
    pub fn reserve_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }

    /// Schedules `kind` at `time` under a previously
    /// [reserved](Self::reserve_seq) sequence number.
    pub fn push_reserved(&mut self, time: SimTime, seq: u64, kind: EventKind) {
        debug_assert!(seq < self.next_seq, "seq was never reserved");
        let e = Event { time, seq, kind };
        match &mut self.imp {
            QueueImpl::Wheel(w) => w.place(e),
            QueueImpl::Heap(h) => h.push(e),
        }
        self.len += 1;
        self.peak_len = self.peak_len.max(self.len);
    }

    /// Key `(time, seq)` of the earliest pending event without popping it
    /// — `None` on an empty queue. Both arms agree with what
    /// [`pop`](Self::pop) would return next, so a driver can decide whether the
    /// next event falls inside a virtual-time window before committing to
    /// dispatch it.
    pub fn peek_key(&self) -> Option<(SimTime, u64)> {
        match &self.imp {
            QueueImpl::Wheel(w) => w.peek_key(),
            QueueImpl::Heap(h) => h.peek().map(|e| (e.time, e.seq)),
        }
    }

    /// Pops the earliest event, if any.
    pub fn pop(&mut self) -> Option<Event> {
        let popped = match &mut self.imp {
            QueueImpl::Wheel(w) => w.pop(),
            QueueImpl::Heap(h) => h.pop(),
        };
        if popped.is_some() {
            self.len -= 1;
        }
        popped
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events remain.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Largest number of simultaneously pending events seen so far — the
    /// queue-pressure telemetry behind `peak_queue_len` in the benchmark
    /// baseline.
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }

    /// Next sequence number this queue would issue — part of a snapshot,
    /// because reserved-but-unscheduled seqs (parked polls) must keep
    /// their exact tie-break positions across a resume.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Every pending event in `(time, seq)` order — the queue's canonical
    /// snapshot form, identical for both arms (and for a wheel cursor at
    /// any position), so snapshot bytes never depend on the backing arm's
    /// internal layout.
    pub fn snapshot_events(&self) -> Vec<Event> {
        let mut out = Vec::with_capacity(self.len);
        match &self.imp {
            QueueImpl::Wheel(w) => {
                out.extend_from_slice(&w.current[w.pos..]);
                for slot in &w.slots {
                    out.extend_from_slice(slot);
                }
                out.extend(w.overflow.iter().copied());
            }
            QueueImpl::Heap(h) => out.extend(h.iter().copied()),
        }
        out.sort_unstable_by_key(|e| (e.time, e.seq));
        debug_assert_eq!(out.len(), self.len);
        out
    }

    /// Rebuilds a queue from its snapshot form: the chosen arm, every
    /// pending event (each keeping its original seq), the seq counter, and
    /// the peak-length high-water mark. The pop sequence of the restored
    /// queue is identical to the snapshotted one's.
    pub fn restore(
        kind: QueueKind,
        events: &[Event],
        next_seq: u64,
        peak_len: usize,
    ) -> EventQueue {
        let mut q = EventQueue::with_kind(kind);
        q.next_seq = next_seq;
        for e in events {
            q.push_reserved(e.time, e.seq, e.kind);
        }
        q.peak_len = peak_len.max(q.len);
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn both_kinds() -> [QueueKind; 2] {
        [QueueKind::Wheel, QueueKind::Heap]
    }

    #[test]
    fn pops_in_time_order() {
        for kind in both_kinds() {
            let mut q = EventQueue::with_kind(kind);
            q.push(30, EventKind::CheckIn { device: 3 });
            q.push(10, EventKind::CheckIn { device: 1 });
            q.push(20, EventKind::CheckIn { device: 2 });
            let times: Vec<SimTime> = std::iter::from_fn(|| q.pop()).map(|e| e.time).collect();
            assert_eq!(times, vec![10, 20, 30], "{kind:?}");
        }
    }

    #[test]
    fn ties_break_by_insertion_order() {
        for kind in both_kinds() {
            let mut q = EventQueue::with_kind(kind);
            for d in 0..5 {
                q.push(7, EventKind::CheckIn { device: d });
            }
            let devices: Vec<usize> = std::iter::from_fn(|| q.pop())
                .map(|e| match e.kind {
                    EventKind::CheckIn { device } => device,
                    _ => unreachable!(),
                })
                .collect();
            assert_eq!(devices, vec![0, 1, 2, 3, 4], "{kind:?}");
        }
    }

    #[test]
    fn len_and_empty_track_contents() {
        for kind in both_kinds() {
            let mut q = EventQueue::with_kind(kind);
            assert!(q.is_empty());
            q.push(1, EventKind::RoundStart { job_idx: 0 });
            assert_eq!(q.len(), 1);
            q.pop();
            assert!(q.is_empty());
            assert!(q.pop().is_none());
        }
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        for kind in both_kinds() {
            let mut q = EventQueue::with_kind(kind);
            q.push(100, EventKind::CheckIn { device: 0 });
            q.push(50, EventKind::CheckIn { device: 1 });
            assert_eq!(q.pop().unwrap().time, 50);
            // Push at the timestamp currently being drained and beyond.
            q.push(50, EventKind::CheckIn { device: 2 });
            q.push(75, EventKind::CheckIn { device: 3 });
            let order: Vec<SimTime> = std::iter::from_fn(|| q.pop()).map(|e| e.time).collect();
            assert_eq!(order, vec![50, 75, 100], "{kind:?}");
        }
    }

    #[test]
    fn far_future_events_cross_the_overflow_tier() {
        // Beyond 256^4 ms the wheel must fall back to the overflow heap
        // and still pop in exact order.
        let horizon = 1u64 << 32;
        for kind in both_kinds() {
            let mut q = EventQueue::with_kind(kind);
            q.push(3 * horizon + 17, EventKind::CheckIn { device: 3 });
            q.push(5, EventKind::CheckIn { device: 0 });
            q.push(horizon + 1, EventKind::CheckIn { device: 1 });
            q.push(3 * horizon + 17, EventKind::CheckIn { device: 4 });
            q.push(horizon, EventKind::CheckIn { device: 2 });
            let devices: Vec<usize> = std::iter::from_fn(|| q.pop())
                .map(|e| match e.kind {
                    EventKind::CheckIn { device } => device,
                    _ => unreachable!(),
                })
                .collect();
            assert_eq!(devices, vec![0, 2, 1, 3, 4], "{kind:?}");
        }
    }

    #[test]
    fn reserved_seqs_tie_break_like_the_original_push() {
        for kind in both_kinds() {
            let mut q = EventQueue::with_kind(kind);
            q.push(10, EventKind::CheckIn { device: 0 }); // seq 0
            let reserved = q.reserve_seq(); // seq 1
            q.push(10, EventKind::CheckIn { device: 2 }); // seq 2
            q.push_reserved(10, reserved, EventKind::CheckIn { device: 1 });
            let devices: Vec<usize> = std::iter::from_fn(|| q.pop())
                .map(|e| match e.kind {
                    EventKind::CheckIn { device } => device,
                    _ => unreachable!(),
                })
                .collect();
            assert_eq!(devices, vec![0, 1, 2], "{kind:?}");
        }
    }

    #[test]
    fn peek_matches_pop_on_both_arms() {
        // Mixed tiers (same-ms ties, tier 0/1/2 spans, overflow) — peek
        // must agree with the next pop at every drain position.
        let times = [7u64, 7, 300, 70_000, 70_000, 20_000_000, (1u64 << 32) + 5];
        for kind in both_kinds() {
            let mut q = EventQueue::with_kind(kind);
            for (d, &t) in times.iter().enumerate() {
                q.push(t, EventKind::CheckIn { device: d });
            }
            loop {
                let peeked = q.peek_key();
                let popped = q.pop();
                match (peeked, popped) {
                    (Some(key), Some(e)) => assert_eq!(key, (e.time, e.seq), "{kind:?}"),
                    (None, None) => break,
                    other => panic!("peek/pop disagree on {kind:?}: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn peek_is_non_destructive() {
        for kind in both_kinds() {
            let mut q = EventQueue::with_kind(kind);
            q.push(500, EventKind::CheckIn { device: 1 });
            assert_eq!(q.peek_key(), Some((500, 0)), "{kind:?}");
            assert_eq!(q.peek_key(), Some((500, 0)), "{kind:?}");
            // A peek must not move the wheel cursor: a push at an earlier
            // time afterwards is still legal and pops first.
            q.push(100, EventKind::CheckIn { device: 2 });
            assert_eq!(q.peek_key(), Some((100, 1)), "{kind:?}");
            assert_eq!(q.pop().unwrap().time, 100, "{kind:?}");
            assert_eq!(q.pop().unwrap().time, 500, "{kind:?}");
            assert_eq!(q.peek_key(), None, "{kind:?}");
        }
    }

    #[test]
    fn peak_len_tracks_high_water_mark() {
        let mut q = EventQueue::new();
        for t in 0..10 {
            q.push(t, EventKind::CheckIn { device: 0 });
        }
        for _ in 0..10 {
            q.pop();
        }
        q.push(99, EventKind::CheckIn { device: 0 });
        assert_eq!(q.peak_len(), 10);
        assert_eq!(q.len(), 1);
    }
}
