//! The simulation event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use venn_core::{JobId, SimTime};

/// What happens at an event's firing time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A job from the workload arrives and submits its first round.
    JobArrival { job_idx: usize },
    /// A device availability session begins.
    SessionStart { device: usize, session_end: SimTime },
    /// An online, idle device polls the resource manager.
    CheckIn { device: usize },
    /// A held (allocated but not yet computing) device's session ends.
    HoldExpire {
        job: JobId,
        epoch: u32,
        device: usize,
    },
    /// A device finishes its task and reports back.
    Response {
        job: JobId,
        epoch: u32,
        device: usize,
        response_ms: u64,
    },
    /// A device departed before finishing its task.
    AssignFailure {
        job: JobId,
        epoch: u32,
        device: usize,
    },
    /// The deadline of a round request fires.
    RoundDeadline { job: JobId, epoch: u32 },
    /// A job starts its next round (after aggregation or an abort).
    RoundStart { job_idx: usize },
}

/// A scheduled event. Ordered by time, then by insertion sequence so
/// simultaneous events fire in a deterministic order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Firing time.
    pub time: SimTime,
    /// Tie-breaking insertion sequence number.
    pub seq: u64,
    /// Payload.
    pub kind: EventKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so BinaryHeap pops the *earliest* event.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Min-heap of events with deterministic tie-breaking.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Event>,
    next_seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules `kind` at `time`.
    pub fn push(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { time, seq, kind });
    }

    /// Pops the earliest event, if any.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, EventKind::CheckIn { device: 3 });
        q.push(10, EventKind::CheckIn { device: 1 });
        q.push(20, EventKind::CheckIn { device: 2 });
        let times: Vec<SimTime> = std::iter::from_fn(|| q.pop()).map(|e| e.time).collect();
        assert_eq!(times, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for d in 0..5 {
            q.push(7, EventKind::CheckIn { device: d });
        }
        let devices: Vec<usize> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::CheckIn { device } => device,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(devices, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn len_and_empty_track_contents() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(1, EventKind::RoundStart { job_idx: 0 });
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }
}
