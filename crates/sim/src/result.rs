//! Simulation outputs.

use venn_core::SimTime;
use venn_metrics::{EnvStats, JctBreakdown, JctRecord};

/// One completed round, logged when `record_rounds` is enabled — the hook
/// the federated-learning experiments (Figs. 4, 9) consume.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundLog {
    /// Index of the job in the workload.
    pub job_idx: usize,
    /// Round number (0-based) within the job.
    pub round: u32,
    /// When the round's request was submitted.
    pub start_ms: SimTime,
    /// When the round reached quorum.
    pub end_ms: SimTime,
    /// Devices that responded in time (population indices).
    pub participants: Vec<usize>,
}

/// Everything a simulation run produces.
#[derive(Debug, Clone, Default)]
pub struct SimResult {
    /// Scheduler under test.
    pub scheduler_name: String,
    /// Per-job completion records (index = workload job index).
    pub records: Vec<JctRecord>,
    /// Per-round logs, when enabled.
    pub rounds: Vec<RoundLog>,
    /// Rounds that missed their deadline and retried.
    pub aborted_rounds: u64,
    /// Total device assignments handed out.
    pub assignments: u64,
    /// Assignments that failed (device departed mid-task).
    pub failures: u64,
    /// Total events the kernel dispatched — the numerator of the
    /// events-per-second throughput metric.
    pub events: u64,
    /// High-water mark of the pending-event queue — queue-pressure
    /// telemetry for the benchmark baseline. Since session starts are
    /// streamed (one pending `SessionStart` at a time on the eager arm,
    /// one `CohortWake` per cohort on the split arms) this tracks live
    /// concurrency — in-flight tasks, holds, and repolls — not population
    /// size. The wheel/heap arms agree on it bit for bit.
    pub peak_queue_len: u64,
    /// Allocator high-water mark (bytes) over the run, measured by the
    /// `venn-metrics` tracking allocator when the driving binary installs
    /// it ([`venn_metrics::alloc`]); 0 when no tracker is installed.
    /// Machine-dependent telemetry like wall time — deterministic exports
    /// omit it.
    pub peak_bytes: u64,
    /// Environment-dynamics telemetry (`venn-env`): dropouts, forced
    /// offlines, storm aborts, retries, per-tier response histograms.
    /// Stays at the empty default on the env-off arm.
    pub env: EnvStats,
}

impl SimResult {
    /// Aggregated JCT statistics over all jobs.
    pub fn breakdown(&self) -> JctBreakdown {
        let mut b = JctBreakdown::new();
        for r in &self.records {
            b.add(r);
        }
        b
    }

    /// Average JCT in milliseconds over finished jobs.
    pub fn avg_jct_ms(&self) -> f64 {
        self.breakdown().avg_jct_ms()
    }

    /// Fraction of jobs that finished within the horizon.
    pub fn completion_rate(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().filter(|r| r.is_finished()).count() as f64 / self.records.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_aggregates_records() {
        let mut r1 = JctRecord::new(0);
        r1.finish(100);
        let r2 = JctRecord::new(0); // unfinished
        let res = SimResult {
            scheduler_name: "test".into(),
            records: vec![r1, r2],
            ..SimResult::default()
        };
        assert_eq!(res.breakdown().finished(), 1);
        assert_eq!(res.avg_jct_ms(), 100.0);
        assert_eq!(res.completion_rate(), 0.5);
    }

    #[test]
    fn empty_result_is_safe() {
        let res = SimResult::default();
        assert_eq!(res.completion_rate(), 0.0);
        assert_eq!(res.avg_jct_ms(), 0.0);
    }
}
