//! Per-job runtime state: round phases, epochs, held devices, and JCT
//! accounting.

use venn_core::{CategoryThresholds, SimTime};
use venn_metrics::JctRecord;
use venn_traces::Workload;

/// Where a job is in its round lifecycle (paper Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobPhase {
    /// Not yet arrived or between rounds.
    Idle,
    /// A round request is outstanding; devices are being held.
    Allocating,
    /// All participants are computing; the deadline is ticking.
    Running,
    /// All rounds done.
    Finished,
}

/// Tombstone marking a released slot in [`JobRuntime::held`]. Releases
/// must not shift later entries (the hold order drives the response-noise
/// draw order at round start), so freed slots are blanked in place.
pub const HELD_TOMBSTONE: usize = usize::MAX;

/// Mutable state of one job across its rounds.
#[derive(Debug)]
pub struct JobRuntime {
    /// Eligibility spec derived from the job's category.
    pub spec: venn_core::ResourceSpec,
    /// Rounds completed so far.
    pub rounds_done: u32,
    /// Lifecycle phase.
    pub phase: JobPhase,
    /// Request incarnation; bumped on round completion/abort so stale
    /// events are ignored.
    pub epoch: u32,
    /// When the current round's request was submitted.
    pub request_start: SimTime,
    /// When the current round started computing.
    pub round_start: SimTime,
    /// Devices assigned to the current request.
    pub assigned: u32,
    /// Responses received this round.
    pub responses: u32,
    /// Devices currently held (population indices), in assignment order.
    /// Released slots are blanked to [`HELD_TOMBSTONE`] rather than
    /// removed, so a release is O(1) *and* the order of the surviving
    /// holds — which fixes the RNG draw order at round start — is exactly
    /// what an order-preserving `retain` would leave.
    pub held: Vec<usize>,
    /// Devices that responded this round.
    pub participants: Vec<usize>,
    /// JCT accounting for the final report.
    pub record: JctRecord,
}

impl JobRuntime {
    /// Resets per-round state when a new request is submitted.
    pub fn begin_request(&mut self, now: SimTime) {
        self.phase = JobPhase::Allocating;
        self.request_start = now;
        self.assigned = 0;
        self.responses = 0;
        self.held.clear();
        self.participants.clear();
    }

    /// Whether an event stamped with `epoch` still refers to the current
    /// round incarnation.
    pub fn epoch_is(&self, epoch: u32) -> bool {
        self.epoch == epoch
    }

    /// Records `device` as held and returns its slot in the hold list —
    /// the position index [`release_held`](Self::release_held) frees in
    /// O(1).
    pub fn hold(&mut self, device: usize) -> usize {
        debug_assert_ne!(device, HELD_TOMBSTONE);
        self.held.push(device);
        self.held.len() - 1
    }

    /// Releases the hold at `slot` in O(1) without shifting later holds
    /// (a tombstone takes its place until the round ends).
    pub fn release_held(&mut self, slot: usize, device: usize) {
        debug_assert_eq!(self.held[slot], device, "hold index out of sync");
        self.held[slot] = HELD_TOMBSTONE;
    }

    /// The devices still held, in assignment order (tombstones skipped).
    pub fn held_devices(&self) -> impl Iterator<Item = usize> + '_ {
        self.held.iter().copied().filter(|&d| d != HELD_TOMBSTONE)
    }
}

/// Runtime state of every job in the workload, indexed like
/// `workload.jobs`.
#[derive(Debug)]
pub struct JobTable {
    jobs: Vec<JobRuntime>,
}

impl JobTable {
    /// Builds the table from the workload's job plans.
    pub fn new(workload: &Workload, thresholds: CategoryThresholds) -> Self {
        JobTable {
            jobs: workload
                .jobs
                .iter()
                .map(|plan| JobRuntime {
                    spec: plan.spec(thresholds),
                    rounds_done: 0,
                    phase: JobPhase::Idle,
                    epoch: 0,
                    request_start: 0,
                    round_start: 0,
                    assigned: 0,
                    responses: 0,
                    held: Vec::new(),
                    participants: Vec::new(),
                    record: JctRecord::new(plan.arrival_ms),
                })
                .collect(),
        }
    }

    /// Appends runtime state for one job admitted mid-run (online
    /// serving): identical initial state to what [`JobTable::new`] builds
    /// for a plan known at t=0, so a dynamically submitted job is
    /// indistinguishable from a pre-planned one with the same arrival.
    pub fn push(&mut self, plan: &venn_traces::JobPlan, thresholds: CategoryThresholds) {
        self.jobs.push(JobRuntime {
            spec: plan.spec(thresholds),
            rounds_done: 0,
            phase: JobPhase::Idle,
            epoch: 0,
            request_start: 0,
            round_start: 0,
            assigned: 0,
            responses: 0,
            held: Vec::new(),
            participants: Vec::new(),
            record: JctRecord::new(plan.arrival_ms),
        });
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Read access to one job.
    pub fn get(&self, job_idx: usize) -> &JobRuntime {
        &self.jobs[job_idx]
    }

    /// Write access to one job.
    pub fn get_mut(&mut self, job_idx: usize) -> &mut JobRuntime {
        &mut self.jobs[job_idx]
    }

    /// Consumes the table, yielding the per-job completion records in
    /// workload order.
    pub fn into_records(self) -> Vec<JctRecord> {
        self.jobs.into_iter().map(|j| j.record).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn table() -> JobTable {
        let mut rng = StdRng::seed_from_u64(11);
        let workload = Workload::default_scenario(4, &mut rng);
        JobTable::new(
            &workload,
            CategoryThresholds {
                cpu: 0.55,
                mem: 0.55,
            },
        )
    }

    #[test]
    fn starts_idle_with_zeroed_counters() {
        let t = table();
        assert_eq!(t.len(), 4);
        for i in 0..t.len() {
            let j = t.get(i);
            assert_eq!(j.phase, JobPhase::Idle);
            assert_eq!(j.rounds_done, 0);
            assert_eq!(j.epoch, 0);
            assert!(j.held.is_empty());
        }
    }

    #[test]
    fn begin_request_resets_round_state() {
        let mut t = table();
        let j = t.get_mut(0);
        j.assigned = 5;
        j.responses = 3;
        j.held = vec![1, 2];
        j.participants = vec![1];
        j.begin_request(9_000);
        assert_eq!(j.phase, JobPhase::Allocating);
        assert_eq!(j.request_start, 9_000);
        assert_eq!(j.assigned, 0);
        assert_eq!(j.responses, 0);
        assert!(j.held.is_empty() && j.participants.is_empty());
    }

    #[test]
    fn epochs_guard_stale_events() {
        let mut t = table();
        assert!(t.get(1).epoch_is(0));
        t.get_mut(1).epoch += 1;
        assert!(!t.get(1).epoch_is(0));
        assert!(t.get(1).epoch_is(1));
    }

    #[test]
    fn hold_release_preserves_surviving_order() {
        let mut t = table();
        let j = t.get_mut(0);
        let slots: Vec<usize> = [10, 11, 12, 13, 14].iter().map(|&d| j.hold(d)).collect();
        assert_eq!(slots, vec![0, 1, 2, 3, 4]);
        // Release from the middle and the front: the survivors must keep
        // their assignment order (what an order-preserving retain leaves),
        // because round start draws response noise in hold order.
        j.release_held(1, 11);
        j.release_held(3, 13);
        j.release_held(0, 10);
        assert_eq!(j.held_devices().collect::<Vec<_>>(), vec![12, 14]);
        // Later holds append after the tombstones, keeping order.
        let s = j.hold(15);
        assert_eq!(s, 5);
        assert_eq!(j.held_devices().collect::<Vec<_>>(), vec![12, 14, 15]);
        // A new request clears tombstones with the rest of the list.
        j.begin_request(1_000);
        assert!(j.held.is_empty());
        assert_eq!(j.hold(20), 0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "hold index out of sync")]
    fn mismatched_release_is_caught() {
        let mut t = table();
        let j = t.get_mut(0);
        j.hold(10);
        j.release_held(0, 99);
    }

    #[test]
    fn into_records_preserves_workload_order() {
        let t = table();
        let arrivals: Vec<_> = (0..t.len()).map(|i| t.get(i).record.arrival_ms).collect();
        let records = t.into_records();
        assert_eq!(
            records.iter().map(|r| r.arrival_ms).collect::<Vec<_>>(),
            arrivals
        );
    }
}
