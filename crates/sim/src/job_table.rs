//! Per-job runtime state: round phases, epochs, held devices, and JCT
//! accounting.

use venn_core::{CategoryThresholds, SimTime};
use venn_metrics::JctRecord;
use venn_traces::Workload;

/// Where a job is in its round lifecycle (paper Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobPhase {
    /// Not yet arrived or between rounds.
    Idle,
    /// A round request is outstanding; devices are being held.
    Allocating,
    /// All participants are computing; the deadline is ticking.
    Running,
    /// All rounds done.
    Finished,
}

/// Mutable state of one job across its rounds.
#[derive(Debug)]
pub struct JobRuntime {
    /// Eligibility spec derived from the job's category.
    pub spec: venn_core::ResourceSpec,
    /// Rounds completed so far.
    pub rounds_done: u32,
    /// Lifecycle phase.
    pub phase: JobPhase,
    /// Request incarnation; bumped on round completion/abort so stale
    /// events are ignored.
    pub epoch: u32,
    /// When the current round's request was submitted.
    pub request_start: SimTime,
    /// When the current round started computing.
    pub round_start: SimTime,
    /// Devices assigned to the current request.
    pub assigned: u32,
    /// Responses received this round.
    pub responses: u32,
    /// Devices currently held (population indices).
    pub held: Vec<usize>,
    /// Devices that responded this round.
    pub participants: Vec<usize>,
    /// JCT accounting for the final report.
    pub record: JctRecord,
}

impl JobRuntime {
    /// Resets per-round state when a new request is submitted.
    pub fn begin_request(&mut self, now: SimTime) {
        self.phase = JobPhase::Allocating;
        self.request_start = now;
        self.assigned = 0;
        self.responses = 0;
        self.held.clear();
        self.participants.clear();
    }

    /// Whether an event stamped with `epoch` still refers to the current
    /// round incarnation.
    pub fn epoch_is(&self, epoch: u32) -> bool {
        self.epoch == epoch
    }
}

/// Runtime state of every job in the workload, indexed like
/// `workload.jobs`.
#[derive(Debug)]
pub struct JobTable {
    jobs: Vec<JobRuntime>,
}

impl JobTable {
    /// Builds the table from the workload's job plans.
    pub fn new(workload: &Workload, thresholds: CategoryThresholds) -> Self {
        JobTable {
            jobs: workload
                .jobs
                .iter()
                .map(|plan| JobRuntime {
                    spec: plan.spec(thresholds),
                    rounds_done: 0,
                    phase: JobPhase::Idle,
                    epoch: 0,
                    request_start: 0,
                    round_start: 0,
                    assigned: 0,
                    responses: 0,
                    held: Vec::new(),
                    participants: Vec::new(),
                    record: JctRecord::new(plan.arrival_ms),
                })
                .collect(),
        }
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Read access to one job.
    pub fn get(&self, job_idx: usize) -> &JobRuntime {
        &self.jobs[job_idx]
    }

    /// Write access to one job.
    pub fn get_mut(&mut self, job_idx: usize) -> &mut JobRuntime {
        &mut self.jobs[job_idx]
    }

    /// Consumes the table, yielding the per-job completion records in
    /// workload order.
    pub fn into_records(self) -> Vec<JctRecord> {
        self.jobs.into_iter().map(|j| j.record).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn table() -> JobTable {
        let mut rng = StdRng::seed_from_u64(11);
        let workload = Workload::default_scenario(4, &mut rng);
        JobTable::new(
            &workload,
            CategoryThresholds {
                cpu: 0.55,
                mem: 0.55,
            },
        )
    }

    #[test]
    fn starts_idle_with_zeroed_counters() {
        let t = table();
        assert_eq!(t.len(), 4);
        for i in 0..t.len() {
            let j = t.get(i);
            assert_eq!(j.phase, JobPhase::Idle);
            assert_eq!(j.rounds_done, 0);
            assert_eq!(j.epoch, 0);
            assert!(j.held.is_empty());
        }
    }

    #[test]
    fn begin_request_resets_round_state() {
        let mut t = table();
        let j = t.get_mut(0);
        j.assigned = 5;
        j.responses = 3;
        j.held = vec![1, 2];
        j.participants = vec![1];
        j.begin_request(9_000);
        assert_eq!(j.phase, JobPhase::Allocating);
        assert_eq!(j.request_start, 9_000);
        assert_eq!(j.assigned, 0);
        assert_eq!(j.responses, 0);
        assert!(j.held.is_empty() && j.participants.is_empty());
    }

    #[test]
    fn epochs_guard_stale_events() {
        let mut t = table();
        assert!(t.get(1).epoch_is(0));
        t.get_mut(1).epoch += 1;
        assert!(!t.get(1).epoch_is(0));
        assert!(t.get(1).epoch_is(1));
    }

    #[test]
    fn into_records_preserves_workload_order() {
        let t = table();
        let arrivals: Vec<_> = (0..t.len()).map(|i| t.get(i).record.arrival_ms).collect();
        let records = t.into_records();
        assert_eq!(
            records.iter().map(|r| r.arrival_ms).collect::<Vec<_>>(),
            arrivals
        );
    }
}
