//! Durable checkpoint management over the [`SimFs`] boundary.
//!
//! PR 8 taught `vennsim` to write periodic world snapshots; this module
//! lifts that logic out of the binary and behind [`SimFs`] so every
//! recovery path is drivable by the deterministic fault injector
//! ([`venn_core::faultio`]) instead of only by `kill -9`:
//!
//! * **Atomic publish** — a checkpoint is written to `<name>.tmp`,
//!   fsynced, then renamed over `ckpt-<simtime>.vsnp`. A crash at any
//!   interior point strands at most a `.tmp` file; the real name always
//!   holds a complete, sealed container (or nothing).
//! * **Startup hygiene** — [`CheckpointStore::clean_stale_tmp`] scans
//!   for and removes `ckpt-*.vsnp.tmp` files left by a crash mid-write,
//!   reporting each removal; listing and resume never parse them.
//! * **Retry with backoff** — transient write failures (ENOSPC, EIO)
//!   are retried a bounded number of times before surfacing as a typed
//!   error; backoff is wall-clock only, so virtual time and the
//!   simulation's determinism are untouched.
//! * **Triage on resume** — newest checkpoint first; an unreadable,
//!   truncated, corrupt, or mismatched-run file is reported and the
//!   next-newest tried. Every degraded step is a warning string, never
//!   a panic.

use std::fmt;
use std::time::Duration;

use venn_core::faultio::{retry_transient, FioError, SimFs};
use venn_core::{Scheduler, SnapError};
use venn_traces::Workload;

use crate::snapshot::{resume_world, snapshot_world};
use crate::{SimConfig, World};

/// Write attempts per checkpoint before the error surfaces.
const WRITE_ATTEMPTS: u32 = 4;

/// Initial backoff between checkpoint write attempts (doubles each try).
const WRITE_BACKOFF: Duration = Duration::from_millis(10);

/// Why a checkpoint operation failed — always typed, never a panic.
#[derive(Debug, Clone, PartialEq)]
pub enum CkptError {
    /// Capturing or decoding the snapshot bytes failed.
    Snapshot(SnapError),
    /// A filesystem operation failed (after retries, where applicable).
    Io(FioError),
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::Snapshot(e) => write!(f, "checkpoint snapshot: {e}"),
            CkptError::Io(e) => write!(f, "checkpoint I/O: {e}"),
        }
    }
}

impl std::error::Error for CkptError {}

impl From<FioError> for CkptError {
    fn from(e: FioError) -> Self {
        CkptError::Io(e)
    }
}

impl From<SnapError> for CkptError {
    fn from(e: SnapError) -> Self {
        CkptError::Snapshot(e)
    }
}

/// A resumed run: the restored world plus the scheduler driving it.
pub type LiveRun = (World, Box<dyn Scheduler>);

/// What a resume attempt found, with every degraded step on record.
pub struct ResumeOutcome {
    /// The restored run, or `None` when no checkpoint survived triage.
    pub run: Option<LiveRun>,
    /// One line per skipped/unusable checkpoint, oldest attempt first.
    pub warnings: Vec<String>,
}

/// A checkpoint directory bound to a [`SimFs`] backend.
pub struct CheckpointStore<'fs> {
    fs: &'fs mut dyn SimFs,
    dir: String,
    keep: usize,
}

impl<'fs> CheckpointStore<'fs> {
    /// Opens (creating if needed) the checkpoint directory `dir`,
    /// retaining the newest `keep` checkpoints on every write.
    pub fn open(fs: &'fs mut dyn SimFs, dir: &str, keep: usize) -> Result<Self, CkptError> {
        fs.create_dir_all(dir)?;
        Ok(CheckpointStore {
            fs,
            dir: dir.to_string(),
            keep: keep.max(1),
        })
    }

    /// Removes stale `ckpt-*.vsnp.tmp` files left by a crash mid-write,
    /// returning the removed names. Resume never parses `.tmp` files,
    /// but leaving them around wastes space and confuses operators.
    pub fn clean_stale_tmp(&mut self) -> Result<Vec<String>, FioError> {
        let mut removed = Vec::new();
        for name in self.fs.list(&self.dir)? {
            if name.starts_with("ckpt-") && name.ends_with(".vsnp.tmp") {
                let path = format!("{}/{name}", self.dir);
                // Best effort: a vanished or unremovable tmp file is not
                // worth failing startup over.
                if self.fs.remove(&path).is_ok() {
                    removed.push(name);
                }
            }
        }
        Ok(removed)
    }

    /// Checkpoints as `(sim_time_ms, full_path)`, sorted ascending.
    /// `.tmp` strays and unparsable names are skipped, never errors.
    pub fn list(&mut self) -> Result<Vec<(u64, String)>, FioError> {
        let mut out = Vec::new();
        for name in self.fs.list(&self.dir)? {
            let Some(stamp) = name
                .strip_prefix("ckpt-")
                .and_then(|rest| rest.strip_suffix(".vsnp"))
            else {
                continue;
            };
            if let Ok(time) = stamp.parse::<u64>() {
                out.push((time, format!("{}/{name}", self.dir)));
            }
        }
        out.sort();
        Ok(out)
    }

    /// Writes one checkpoint of `world` + `scheduler` atomically
    /// (tmp + fsync + rename), retrying transient failures with backoff,
    /// then prunes all but the newest `keep`. Returns the published path.
    pub fn write(&mut self, world: &World, scheduler: &dyn Scheduler) -> Result<String, CkptError> {
        let bytes = snapshot_world(world, scheduler)?;
        let path = format!("{}/ckpt-{:016}.vsnp", self.dir, world.now());
        retry_transient(WRITE_ATTEMPTS, WRITE_BACKOFF, || {
            self.fs.write_atomic(&path, &bytes)
        })?;
        self.prune()?;
        Ok(path)
    }

    /// Removes all but the newest `keep` checkpoints (best effort —
    /// a failed removal of a stale checkpoint never fails the write
    /// that triggered the prune).
    fn prune(&mut self) -> Result<(), FioError> {
        let ckpts = self.list()?;
        for (_, stale) in ckpts.iter().rev().skip(self.keep) {
            let _ = self.fs.remove(stale);
        }
        Ok(())
    }

    /// Resumes from the newest usable checkpoint, degrading gracefully:
    /// unreadable, truncated, corrupt, or mismatched-run files are
    /// recorded as warnings and the next-newest tried. `build_scheduler`
    /// is called once per attempt — a failed load may leave a scheduler
    /// partially overwritten, so each attempt gets a fresh one.
    pub fn resume(
        &mut self,
        config: SimConfig,
        workload: &Workload,
        build_scheduler: &mut dyn FnMut() -> Box<dyn Scheduler>,
    ) -> Result<ResumeOutcome, FioError> {
        let ckpts = self.list()?;
        let mut warnings = Vec::new();
        for (_, path) in ckpts.iter().rev() {
            let bytes = match self.fs.read(path) {
                Ok(bytes) => bytes,
                Err(e) => {
                    warnings.push(format!("skipping checkpoint {path}: {e}"));
                    continue;
                }
            };
            let mut scheduler = build_scheduler();
            match resume_world(&bytes, config, workload, &mut *scheduler) {
                Ok(world) => {
                    return Ok(ResumeOutcome {
                        run: Some((world, scheduler)),
                        warnings,
                    })
                }
                Err(e) => warnings.push(format!("checkpoint {path} unusable: {e}")),
            }
        }
        Ok(ResumeOutcome {
            run: None,
            warnings,
        })
    }
}
