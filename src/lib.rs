//! Facade crate re-exporting the whole Venn workspace under one name.
//!
//! The reproduction is split into nine focused crates (see
//! `ARCHITECTURE.md` at the repository root for the full map):
//!
//! * [`core`] — the `Scheduler` trait, the incremental `VennScheduler`,
//!   IRS (Algorithm 1), tier matching (Algorithm 2), supply estimation,
//!   and the fairness knob;
//! * [`sim`] — the deterministic event-driven `World` simulator with
//!   pluggable `SimObserver`s;
//! * [`mod@env`] — deterministic environment dynamics: churn, flash crowds,
//!   straggler/network tiers, and fault-injection plans on split RNG
//!   streams;
//! * [`traces`] — synthetic availability / capacity / workload models
//!   calibrated to the paper's figures;
//! * [`baselines`] — the Random / FIFO / SRSF reference schedulers;
//! * [`metrics`] — streaming statistics, JCT accounting, tables, CSV;
//! * [`fl`] — a minimal FedAvg stack for the accuracy experiments;
//! * [`opt`] — an exact solver validating IRS on small instances;
//! * [`serve`] — the online control plane: line-delimited JSON command
//!   protocol, virtual/real time decoupled driver, session journal with
//!   byte-identical replay, and snapshot-fork what-if runs;
//! * [`mod@bench`] — the experiment harness and sweep executor behind
//!   every paper figure/table binary.
//!
//! Root integration tests (and any downstream user who wants a single
//! dependency) import everything through this crate:
//!
//! ```
//! use rand::SeedableRng;
//! use venn::baselines::BaselineScheduler;
//! use venn::sim::{SimConfig, Simulation};
//! use venn::traces::Workload;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let workload = Workload::default_scenario(3, &mut rng);
//! let mut sched = BaselineScheduler::fifo();
//! let result = Simulation::new(SimConfig::small()).run(&workload, &mut sched);
//! assert_eq!(result.records.len(), 3);
//! ```
pub use venn_baselines as baselines;
pub use venn_bench as bench;
pub use venn_core as core;
pub use venn_env as env;
pub use venn_fl as fl;
pub use venn_metrics as metrics;
pub use venn_opt as opt;
pub use venn_serve as serve;
pub use venn_sim as sim;
pub use venn_traces as traces;
