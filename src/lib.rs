//! Facade crate re-exporting the whole Venn workspace.
pub use venn_baselines as baselines;
pub use venn_bench as bench;
pub use venn_core as core;
pub use venn_fl as fl;
pub use venn_metrics as metrics;
pub use venn_opt as opt;
pub use venn_sim as sim;
pub use venn_traces as traces;
