//! The shared differential-test harness: run one experiment under two
//! configurations and byte-compare the full observable surface.
//!
//! Every parity suite in `tests/` is a variation on the same shape —
//! build a deterministic workload, run it under a reference arm and a
//! candidate arm, and assert the candidate changed *cost only*, never
//! behavior. This module centralizes that shape:
//!
//! - [`observe`] / [`observe_kind`] run one `(config, workload,
//!   scheduler)` cell and capture everything a run exposes: the
//!   [`SimResult`], the full assignment stream, and the full dispatched
//!   event trace.
//! - [`assert_run_parity`] is the strict comparison — every
//!   deterministic field byte for byte, including the event stream and
//!   `peak_queue_len`. Two arms that claim bit-identity (storage modes,
//!   sharded execution, incremental scheduling) must pass this.
//! - [`assert_outcome_parity`] is the weaker comparison for arms that
//!   legitimately dispatch a *different event stream* (demand gating
//!   off re-polls idle devices) but must still produce identical
//!   scheduling outcomes.
//!
//! The conventional scheduler seed is `sim.seed ^ SCHED_SEED_SALT`, so
//! arms that differ only in kernel configuration share scheduler RNG
//! streams.

// Each integration-test crate compiles its own copy of this module and
// uses a subset of it.
#![allow(dead_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;

use venn::bench::SchedKind;
use venn::core::{Scheduler, VennConfig, MINUTE_MS};
use venn::sim::{AssignmentLog, EventTrace, SimConfig, SimResult, Simulation};
use venn::traces::{JobDemandModel, Workload, WorkloadKind};

/// Salt XOR-ed into the simulation seed to derive the scheduler seed,
/// shared by every suite so arms compare like with like.
pub const SCHED_SEED_SALT: u64 = 0xA5A5;

/// Everything one run exposes: the final result plus the complete
/// assignment and dispatched-event streams.
#[derive(Debug, Clone)]
pub struct Observed {
    pub result: SimResult,
    pub log: AssignmentLog,
    pub trace: EventTrace,
}

/// All eight scheduler arms the differential suites sweep: the three
/// baselines, the three Venn ablations, and two `VennWith` variants
/// (fairness knob, steal disabled).
pub fn every_sched_kind() -> Vec<SchedKind> {
    vec![
        SchedKind::Random,
        SchedKind::Fifo,
        SchedKind::Srsf,
        SchedKind::Venn,
        SchedKind::VennWoSched,
        SchedKind::VennWoMatch,
        SchedKind::VennWith(VennConfig::with_fairness(2.0)),
        SchedKind::VennWith(VennConfig {
            use_steal: false,
            ..VennConfig::default()
        }),
    ]
}

/// The small-but-contended workload shared by the parity suites: enough
/// churn to cross the periodic refresh interval and exercise steals,
/// tiers, and re-submissions, while staying fast enough to sweep every
/// `SchedKind` across seeds.
pub fn contended_workload(seed: u64) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xBEEF);
    Workload::generate(
        WorkloadKind::Even,
        None,
        6,
        &JobDemandModel {
            rounds_mean: 3.0,
            rounds_max: 5,
            demand_mean: 10.0,
            demand_max: 20,
            ..JobDemandModel::default()
        },
        10.0 * MINUTE_MS as f64,
        &mut rng,
    )
}

/// Runs one cell under `scheduler`, capturing the full observable
/// surface.
pub fn observe(sim: SimConfig, workload: &Workload, scheduler: &mut dyn Scheduler) -> Observed {
    let mut log = AssignmentLog::default();
    let mut trace = EventTrace::default();
    let result =
        Simulation::new(sim).run_observed(workload, scheduler, &mut [&mut log, &mut trace]);
    Observed { result, log, trace }
}

/// Builds `kind` with the conventional scheduler seed and runs it.
pub fn observe_kind(sim: SimConfig, workload: &Workload, kind: SchedKind) -> Observed {
    let mut sched = kind.build(sim.seed ^ SCHED_SEED_SALT);
    observe(sim, workload, &mut *sched)
}

/// Strict parity: every deterministic field of the observable surface,
/// byte for byte. Arms that claim bit-identity must pass this.
pub fn assert_run_parity(a: &Observed, b: &Observed, ctx: &str) {
    assert_eq!(a.result.records, b.result.records, "{ctx}: job records");
    assert_eq!(a.result.rounds, b.result.rounds, "{ctx}: round logs");
    assert_eq!(
        a.result.aborted_rounds, b.result.aborted_rounds,
        "{ctx}: aborts"
    );
    assert_eq!(
        a.result.assignments, b.result.assignments,
        "{ctx}: assignment count"
    );
    assert_eq!(a.result.failures, b.result.failures, "{ctx}: failures");
    assert_eq!(a.result.events, b.result.events, "{ctx}: dispatched events");
    assert_eq!(
        a.result.peak_queue_len, b.result.peak_queue_len,
        "{ctx}: peak queue"
    );
    assert_eq!(a.result.env, b.result.env, "{ctx}: env counters");
    assert_eq!(a.log, b.log, "{ctx}: assignment stream");
    assert_eq!(a.trace, b.trace, "{ctx}: event trace");
}

/// Outcome parity for arms whose event *streams* legitimately differ
/// (demand gating off dispatches extra polls): the scheduling outcome —
/// records, rounds, assignment stream, aborts, failures, environment
/// counters — must still be identical.
pub fn assert_outcome_parity(a: &Observed, b: &Observed, ctx: &str) {
    assert_eq!(a.result.records, b.result.records, "{ctx}: job records");
    assert_eq!(a.result.rounds, b.result.rounds, "{ctx}: round logs");
    assert_eq!(
        a.result.aborted_rounds, b.result.aborted_rounds,
        "{ctx}: aborts"
    );
    assert_eq!(
        a.result.assignments, b.result.assignments,
        "{ctx}: assignment count"
    );
    assert_eq!(a.result.failures, b.result.failures, "{ctx}: failures");
    assert_eq!(a.result.env, b.result.env, "{ctx}: env counters");
    assert_eq!(a.log, b.log, "{ctx}: assignment stream");
}
