//! Shared helpers for the integration-test suites. Cargo does not turn
//! files in subdirectories of `tests/` into test targets, so this module
//! is pulled in by each suite that needs it via `mod common;`.

pub mod crash;
pub mod parity;
