//! In-process crash injection for the checkpoint/resume suites: run a
//! cell to an arbitrary event boundary, snapshot it, throw the live
//! world and scheduler away (the "crash"), rebuild both from the
//! snapshot bytes in a fresh process-equivalent state, and run to
//! completion.
//!
//! [`observe_kind_crashed`] captures the same observable surface as
//! [`parity::observe_kind`](super::parity::observe_kind), so the two
//! compose directly with
//! [`assert_run_parity`](super::parity::assert_run_parity): a crashed
//! run must be byte-identical to the uninterrupted run — records, round
//! logs, assignment stream, dispatched event trace, environment
//! counters, everything.
//!
//! Every crash also asserts *snapshot idempotence*: re-encoding the
//! freshly restored world and scheduler must reproduce the checkpoint
//! bytes exactly. That pins the canonical encodings (sorted event and
//! poll lists, slot-order device dumps) as true fixed points, so a
//! resume-of-a-resume cannot drift.

#![allow(dead_code)]

use venn::bench::SchedKind;
use venn::sim::{resume_world, snapshot_world, AssignmentLog, EventTrace, SimConfig};
use venn::sim::{SimResult, World};
use venn::traces::Workload;

use super::parity::{Observed, SCHED_SEED_SALT};

/// Runs one cell with a crash after `crash_after` dispatched events,
/// resuming from the snapshot in a fresh world + scheduler.
///
/// Observers live *outside* the crashed state on purpose — they stand in
/// for the uninterrupted run's full observation history, so the parity
/// assertion covers both the pre-crash and post-resume halves of the
/// stream. If the run finishes before `crash_after` events, no crash is
/// injected and the plain run is returned (callers sweeping random crash
/// points don't need to know the run length in advance).
pub fn observe_kind_crashed(
    sim: SimConfig,
    workload: &Workload,
    kind: SchedKind,
    crash_after: u64,
) -> Observed {
    let mut log = AssignmentLog::default();
    let mut trace = EventTrace::default();
    let result = run_crashed(
        sim,
        workload,
        kind,
        crash_after,
        &mut [&mut log, &mut trace],
    );
    Observed { result, log, trace }
}

/// [`observe_kind_crashed`] with the crash point chosen by a predicate
/// over the live world — for pinning crashes inside specific states
/// (mid-round, parked polls pending) instead of at a fixed event count.
/// Crashes at the first event boundary where `at` returns true; runs
/// uninterrupted if it never does. Returns the crash point's event
/// count alongside the observation so callers can assert the predicate
/// actually fired.
pub fn observe_kind_crashed_when(
    sim: SimConfig,
    workload: &Workload,
    kind: SchedKind,
    at: impl FnMut(&World) -> bool,
    crashed_at: &mut Option<u64>,
) -> Observed {
    let mut log = AssignmentLog::default();
    let mut trace = EventTrace::default();
    let mut at = at;
    let mut sched = kind.build(sim.seed ^ SCHED_SEED_SALT);
    let mut world = World::new(sim, workload, sched.name());
    let mut observers: [&mut dyn venn::sim::SimObserver; 2] = [&mut log, &mut trace];
    let mut crashed = false;
    while world.step(&mut *sched, &mut observers) {
        if at(&world) {
            crashed = true;
            break;
        }
    }
    let result = if crashed {
        *crashed_at = Some(world.events_processed());
        let bytes = snapshot_world(&world, &*sched).expect("snapshot at crash point");
        drop(world);
        drop(sched);
        resume_and_finish(&bytes, sim, workload, kind, &mut observers)
    } else {
        *crashed_at = None;
        world.finish(&mut observers)
    };
    Observed { result, log, trace }
}

fn run_crashed(
    sim: SimConfig,
    workload: &Workload,
    kind: SchedKind,
    crash_after: u64,
    observers: &mut [&mut dyn venn::sim::SimObserver],
) -> SimResult {
    let mut sched = kind.build(sim.seed ^ SCHED_SEED_SALT);
    let mut world = World::new(sim, workload, sched.name());
    while world.events_processed() < crash_after {
        if !world.step(&mut *sched, observers) {
            // Ran dry before the crash point: nothing to crash.
            return world.finish(observers);
        }
    }
    let bytes = snapshot_world(&world, &*sched).expect("snapshot at crash point");
    // The crash: both the world and the scheduler are dropped; only the
    // serialized checkpoint survives into the "new process".
    drop(world);
    drop(sched);
    resume_and_finish(&bytes, sim, workload, kind, observers)
}

fn resume_and_finish(
    bytes: &[u8],
    sim: SimConfig,
    workload: &Workload,
    kind: SchedKind,
    observers: &mut [&mut dyn venn::sim::SimObserver],
) -> SimResult {
    let mut sched = kind.build(sim.seed ^ SCHED_SEED_SALT);
    let mut world = resume_world(bytes, sim, workload, &mut *sched).expect("resume from snapshot");
    // Idempotence: the restored state must re-encode to the exact
    // checkpoint bytes — the canonical forms are fixed points.
    let reencoded = snapshot_world(&world, &*sched).expect("re-snapshot restored world");
    assert_eq!(
        bytes, reencoded,
        "snapshot of a restored world must be byte-identical to the original snapshot"
    );
    while world.step(&mut *sched, observers) {}
    world.finish(observers)
}
