//! The timing-wheel event queue must be observationally identical to the
//! binary-heap reference arm: for any interleaving of pushes and pops,
//! both arms return the exact same `(time, seq, kind)` pop sequence.
//!
//! The generated operation streams deliberately cover the wheel's hard
//! cases: same-tick ties (many pushes at one timestamp), pushes at the
//! timestamp currently being drained, multi-tier deltas (from 1 ms up to
//! beyond the 256^4 ms top-tier range, which exercises the overflow
//! tier), and reserved-seq wake-ups landing between already-queued
//! same-millisecond events.

use proptest::prelude::*;

use venn::sim::{EventKind, EventQueue, QueueKind};

/// One scripted queue operation. Push deltas are relative to the time of
/// the last popped event so generated streams never schedule into the
/// past (the simulator never does either).
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Push `count` events at `last_pop_time + delta`.
    Push { delta: u64, count: u8 },
    /// Pop up to `count` events.
    Pop { count: u8 },
}

/// Deltas spanning every wheel tier: same-tick (0), tier 0 (1..256),
/// tiers 1–3, and past the 2^32 ms range into the overflow heap.
fn delta() -> impl Strategy<Value = u64> {
    (0u32..6u32, 0u64..255u64).prop_map(|(tier, units)| match tier {
        0 => 0,
        1 => 1 + units % 255,
        2 => (units + 1) << 8,
        3 => (units + 1) << 16,
        4 => (units + 1) << 24,
        _ => (units + 1) << 32,
    })
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        (0u32..2, delta(), 1u8..6).prop_map(|(which, delta, count)| {
            if which == 0 {
                Op::Push { delta, count }
            } else {
                Op::Pop { count }
            }
        }),
        1..120,
    )
}

/// Replays one op stream against both arms, asserting every pop matches.
fn assert_equivalent(ops: &[Op]) {
    let mut wheel = EventQueue::with_kind(QueueKind::Wheel);
    let mut heap = EventQueue::with_kind(QueueKind::Heap);
    let mut device = 0usize;
    let mut last_pop = 0u64;
    for op in ops {
        match *op {
            Op::Push { delta, count } => {
                for _ in 0..count {
                    let t = last_pop + delta;
                    wheel.push(t, EventKind::CheckIn { device });
                    heap.push(t, EventKind::CheckIn { device });
                    device += 1;
                }
            }
            Op::Pop { count } => {
                for _ in 0..count {
                    let w = wheel.pop();
                    let h = heap.pop();
                    assert_eq!(w, h, "arms diverged mid-stream");
                    match w {
                        Some(e) => last_pop = e.time,
                        None => break,
                    }
                }
            }
        }
        assert_eq!(wheel.len(), heap.len());
    }
    // Drain both to the end: the tail must match too.
    loop {
        let w = wheel.pop();
        let h = heap.pop();
        assert_eq!(w, h, "arms diverged during final drain");
        if w.is_none() {
            break;
        }
    }
}

/// The top wheel tier covers `256^4` ms from the cursor; deltas at and
/// just past this horizon decide between tier 3 and the overflow heap.
const TOP_TIER_HORIZON: u64 = 1 << 32;

/// Deltas pinned to the overflow-tier boundary: exactly at the top
/// tier's horizon, a few ms either side, and whole multiples of it (so
/// epoch-by-epoch overflow re-entry is exercised too), mixed with small
/// deltas that keep the cursor moving between boundary pushes.
fn boundary_delta() -> impl Strategy<Value = u64> {
    (0u32..6u32, 0u64..4u64).prop_map(|(which, units)| match which {
        0 => TOP_TIER_HORIZON - 1 - units,
        1 => TOP_TIER_HORIZON,
        2 => TOP_TIER_HORIZON + 1 + units,
        3 => (units + 1) * TOP_TIER_HORIZON,
        4 => (units + 1) * TOP_TIER_HORIZON + units,
        _ => 1 + units,
    })
}

fn boundary_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        (0u32..2, boundary_delta(), 1u8..6).prop_map(|(which, delta, count)| {
            if which == 0 {
                Op::Push { delta, count }
            } else {
                Op::Pop { count }
            }
        }),
        1..80,
    )
}

proptest! {
    /// Random push/pop interleavings across all tiers pop identically.
    #[test]
    fn wheel_matches_heap_on_random_interleavings(ops in ops()) {
        assert_equivalent(&ops);
    }

    /// Events pushed exactly at and just past the top tier's horizon —
    /// the tier-3/overflow boundary — must pop in `(time, seq)` order
    /// identical to the heap arm.
    #[test]
    fn overflow_tier_boundary_matches_heap(ops in boundary_ops()) {
        assert_equivalent(&ops);
    }
}

#[test]
fn pushes_straddling_the_top_tier_horizon_pop_in_order() {
    // Deterministic pin of the exact boundary: one event in the last
    // millisecond tier 3 covers, one exactly at the horizon (the first
    // overflow event), one just past it, plus same-tick ties on each
    // side of the edge.
    let ops = [
        Op::Push {
            delta: TOP_TIER_HORIZON - 1,
            count: 2,
        },
        Op::Push {
            delta: TOP_TIER_HORIZON,
            count: 2,
        },
        Op::Push {
            delta: TOP_TIER_HORIZON + 1,
            count: 2,
        },
        Op::Pop { count: 3 },
        // Mid-drain, push at the boundary relative to the new cursor.
        Op::Push {
            delta: TOP_TIER_HORIZON,
            count: 1,
        },
        Op::Pop { count: 200 },
    ];
    assert_equivalent(&ops);
}

#[test]
fn same_tick_bursts_pop_in_insertion_order() {
    // A dense burst at one timestamp interleaved with drains: the wheel's
    // in-slot seq sort and mid-drain inserts must preserve FIFO ties.
    let ops = [
        Op::Push { delta: 5, count: 5 },
        Op::Pop { count: 2 },
        Op::Push { delta: 0, count: 4 }, // same tick as the drain point
        Op::Push { delta: 1, count: 2 },
        Op::Pop { count: 200 },
    ];
    assert_equivalent(&ops);
}

#[test]
fn overflow_tier_round_trips_exactly() {
    // Far-future events park in the overflow heap and re-enter the wheel
    // epoch by epoch without losing their tie order.
    let ops = [
        Op::Push {
            delta: 7 << 32,
            count: 3,
        },
        Op::Push { delta: 3, count: 2 },
        Op::Push {
            delta: (7 << 32) + 1,
            count: 2,
        },
        Op::Pop { count: 200 },
    ];
    assert_equivalent(&ops);
}

#[test]
fn reserved_seq_wakeups_tie_identically() {
    // Reserve seqs between pushes (as demand gating does for parked
    // check-ins) and wake them later at a contested millisecond: both
    // arms must slot the wake-up at its reserved position.
    let mut wheel = EventQueue::with_kind(QueueKind::Wheel);
    let mut heap = EventQueue::with_kind(QueueKind::Heap);
    for q in [&mut wheel, &mut heap] {
        q.push(100, EventKind::CheckIn { device: 0 }); // seq 0
    }
    let r_wheel = wheel.reserve_seq(); // seq 1
    let r_heap = heap.reserve_seq();
    assert_eq!(r_wheel, r_heap);
    for q in [&mut wheel, &mut heap] {
        q.push(100, EventKind::CheckIn { device: 2 }); // seq 2
        q.push(50, EventKind::CheckIn { device: 3 }); // seq 3
    }
    // Drain past 50, then wake the reserved check-in at the contested
    // tick 100 — it must pop between devices 0 and 2.
    assert_eq!(wheel.pop(), heap.pop());
    wheel.push_reserved(100, r_wheel, EventKind::CheckIn { device: 1 });
    heap.push_reserved(100, r_heap, EventKind::CheckIn { device: 1 });
    let mut devices = Vec::new();
    loop {
        let w = wheel.pop();
        assert_eq!(w, heap.pop());
        match w {
            Some(e) => match e.kind {
                EventKind::CheckIn { device } => devices.push(device),
                _ => unreachable!(),
            },
            None => break,
        }
    }
    assert_eq!(devices, vec![0, 1, 2]);
}
