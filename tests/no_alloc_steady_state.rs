//! Steady-state allocation audit for the scheduler hot paths.
//!
//! The dense data plane's contract is not just "no hashing" but "no
//! allocation": once a scheduler has seen its jobs and groups, the whole
//! check-in → assign → demand-return cycle — *including* the refresh
//! triggers (resubmission, withdrawal, the periodic supply-drift rebuild)
//! that re-sort group orders and re-run IRS — must run out of persistent
//! buffers. A counting global allocator pins that: after a warm-up pass
//! that grows every scratch buffer to its high-water mark, an identical
//! traffic pass must perform exactly zero allocations.
//!
//! This file deliberately contains a single `#[test]` so no concurrent
//! test pollutes the process-wide allocation counter.

use venn::baselines::BaselineScheduler;
use venn::core::{
    Capacity, DeviceId, DeviceInfo, JobId, Request, ResourceSpec, Scheduler, VennConfig,
    VennScheduler,
};
use venn::metrics::alloc::{allocation_calls as allocations, TrackingAlloc};

// The shared counting allocator from `venn-metrics` (grown out of this
// harness): `allocation_calls()` counts every alloc/realloc entry point,
// which is exactly the steady-state invariant measured below.
#[global_allocator]
static GLOBAL: TrackingAlloc = TrackingAlloc;

fn dev(i: u64) -> DeviceInfo {
    let cpu = ((i * 13) % 10) as f64 / 10.0;
    let mem = ((i * 7) % 10) as f64 / 10.0;
    DeviceInfo::new(DeviceId::new(10_000 + i), Capacity::new(cpu, mem))
}

fn spec_of(j: u64) -> ResourceSpec {
    match j % 3 {
        0 => ResourceSpec::any(),
        1 => ResourceSpec::new(0.5, 0.5),
        _ => ResourceSpec::new(0.5, 0.0),
    }
}

/// One pass of steady-state traffic: check-ins with assignments and demand
/// returns, plus the refresh triggers — rotating withdraw/resubmit churn —
/// and enough simulated time to cross the periodic rebuild interval many
/// times. Returns the advanced clock so passes chain seamlessly.
fn drive(sched: &mut dyn Scheduler, mut t: u64, steps: u64) -> u64 {
    for i in 0..steps {
        // 7-second steps cross the 60 s periodic-refresh interval.
        t += 7_000;
        let d = dev(i % 97);
        sched.on_check_in(&d, t);
        if let Some(job) = sched.assign(&d, t) {
            // Return the demand so the queue never drains mid-measurement.
            sched.add_demand(job, 1, t);
            if i % 5 == 0 {
                sched.on_response(job, &d, 1_000 + i, t);
            }
            if i % 11 == 0 {
                sched.on_alloc_complete(job, i, t);
            }
        }
        if i % 25 == 0 {
            // Round-completion churn: an existing job's request leaves the
            // queue and returns — the submit/withdraw refresh triggers.
            let j = (i / 25) % 8;
            sched.withdraw(JobId::new(j), t);
            sched.submit(
                Request::new(JobId::new(j), spec_of(j), 2 + (j % 3) as u32, 40 + j),
                t,
            );
        }
    }
    t
}

/// Warm a scheduler to its steady state, then assert a full traffic pass
/// allocates nothing.
fn assert_no_alloc_steady_state(mut sched: Box<dyn Scheduler>, label: &str) {
    let mut t = 0;
    for j in 0..8u64 {
        sched.submit(
            Request::new(JobId::new(j), spec_of(j), 2 + (j % 3) as u32, 40 + j),
            t,
        );
    }
    // Pre-fill the per-job profiler ring buffers (512 samples each) to
    // their caps: once full they overwrite in place, so none of the
    // doubling growth below is left for the measured pass.
    for j in 0..8u64 {
        for k in 0..600u64 {
            sched.on_response(JobId::new(j), &dev(k % 97), 1_000 + k, t);
            sched.on_alloc_complete(JobId::new(j), k, t);
        }
    }
    // Warm-up passes grow every scratch buffer (and the score rings, which
    // only fill through assignments) to their high-water marks.
    for _ in 0..4 {
        t = drive(sched.as_mut(), t, 3_000);
    }

    let before = allocations();
    drive(sched.as_mut(), t, 3_000);
    let delta = allocations() - before;
    assert_eq!(
        delta, 0,
        "{label}: steady-state pass performed {delta} allocations"
    );
}

#[test]
fn schedulers_do_not_allocate_in_steady_state() {
    // The supply window bounds the check-in queue's occupancy; a short
    // window reaches its high-water mark within the warm-up passes.
    let window = VennConfig {
        supply_window_ms: 600_000,
        ..VennConfig::default()
    };
    assert_no_alloc_steady_state(Box::new(VennScheduler::new(window)), "venn");
    assert_no_alloc_steady_state(
        Box::new(VennScheduler::new(VennConfig {
            supply_window_ms: 600_000,
            incremental: false,
            ..VennConfig::default()
        })),
        "venn-full",
    );
    // The FIFO ablation arms exercise the incremental insert and the
    // full-rebuild reference (the old per-refresh `fifo` Vec).
    assert_no_alloc_steady_state(
        Box::new(VennScheduler::new(VennConfig {
            supply_window_ms: 600_000,
            use_irs: false,
            ..VennConfig::default()
        })),
        "venn-wo-sched",
    );
    assert_no_alloc_steady_state(
        Box::new(VennScheduler::new(VennConfig {
            supply_window_ms: 600_000,
            use_irs: false,
            incremental: false,
            ..VennConfig::default()
        })),
        "venn-wo-sched-full",
    );
    // Baselines share the slot-map data plane and the persistent
    // candidate buffer.
    assert_no_alloc_steady_state(Box::new(BaselineScheduler::random_order(42)), "random");
    assert_no_alloc_steady_state(Box::new(BaselineScheduler::fifo()), "fifo");
    assert_no_alloc_steady_state(Box::new(BaselineScheduler::srsf()), "srsf");
}
