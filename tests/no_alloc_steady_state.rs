//! Steady-state allocation audit for the scheduler hot paths.
//!
//! The dense data plane's contract is not just "no hashing" but "no
//! allocation": once a scheduler has seen its jobs and groups, the whole
//! check-in → assign → demand-return cycle — *including* the refresh
//! triggers (resubmission, withdrawal, the periodic supply-drift rebuild)
//! that re-sort group orders and re-run IRS — must run out of persistent
//! buffers. A counting global allocator pins that: after a warm-up pass
//! that grows every scratch buffer to its high-water mark, an identical
//! traffic pass must perform exactly zero allocations.
//!
//! The same contract extends to the sharded execution plane: once its
//! per-shard deques, outbox scratch, and observation batch have grown to
//! their high-water marks, a full park → advance → wake cycle must
//! allocate nothing — on both the k-way-merge fast path and the bulk
//! outbox path. (The *parallel* bulk resolve, used above
//! `PAR_THRESHOLD` entries with multiple shards, spawns worker threads
//! and is allocating by design; it is exercised for correctness in
//! `tests/shard_determinism.rs` instead.)
//!
//! This file deliberately contains a single `#[test]` so no concurrent
//! test pollutes the process-wide allocation counter.

use venn::baselines::BaselineScheduler;
use venn::core::{
    Capacity, DeviceId, DeviceInfo, JobId, Request, ResourceSpec, Scheduler, VennConfig,
    VennScheduler,
};
use venn::metrics::alloc::{allocation_calls as allocations, TrackingAlloc};
use venn::sim::shard::PAR_THRESHOLD;
use venn::sim::{DevicePool, EventQueue, QueueKind, ShardPlane};
use venn::traces::CapacityModel;

// The shared counting allocator from `venn-metrics` (grown out of this
// harness): `allocation_calls()` counts every alloc/realloc entry point,
// which is exactly the steady-state invariant measured below.
#[global_allocator]
static GLOBAL: TrackingAlloc = TrackingAlloc;

fn dev(i: u64) -> DeviceInfo {
    let cpu = ((i * 13) % 10) as f64 / 10.0;
    let mem = ((i * 7) % 10) as f64 / 10.0;
    DeviceInfo::new(DeviceId::new(10_000 + i), Capacity::new(cpu, mem))
}

fn spec_of(j: u64) -> ResourceSpec {
    match j % 3 {
        0 => ResourceSpec::any(),
        1 => ResourceSpec::new(0.5, 0.5),
        _ => ResourceSpec::new(0.5, 0.0),
    }
}

/// One pass of steady-state traffic: check-ins with assignments and demand
/// returns, plus the refresh triggers — rotating withdraw/resubmit churn —
/// and enough simulated time to cross the periodic rebuild interval many
/// times. Returns the advanced clock so passes chain seamlessly.
fn drive(sched: &mut dyn Scheduler, mut t: u64, steps: u64) -> u64 {
    for i in 0..steps {
        // 7-second steps cross the 60 s periodic-refresh interval.
        t += 7_000;
        let d = dev(i % 97);
        sched.on_check_in(&d, t);
        if let Some(job) = sched.assign(&d, t) {
            // Return the demand so the queue never drains mid-measurement.
            sched.add_demand(job, 1, t);
            if i % 5 == 0 {
                sched.on_response(job, &d, 1_000 + i, t);
            }
            if i % 11 == 0 {
                sched.on_alloc_complete(job, i, t);
            }
        }
        if i % 25 == 0 {
            // Round-completion churn: an existing job's request leaves the
            // queue and returns — the submit/withdraw refresh triggers.
            let j = (i / 25) % 8;
            sched.withdraw(JobId::new(j), t);
            sched.submit(
                Request::new(JobId::new(j), spec_of(j), 2 + (j % 3) as u32, 40 + j),
                t,
            );
        }
    }
    t
}

/// Warm a scheduler to its steady state, then assert a full traffic pass
/// allocates nothing.
fn assert_no_alloc_steady_state(mut sched: Box<dyn Scheduler>, label: &str) {
    let mut t = 0;
    for j in 0..8u64 {
        sched.submit(
            Request::new(JobId::new(j), spec_of(j), 2 + (j % 3) as u32, 40 + j),
            t,
        );
    }
    // Pre-fill the per-job profiler ring buffers (512 samples each) to
    // their caps: once full they overwrite in place, so none of the
    // doubling growth below is left for the measured pass.
    for j in 0..8u64 {
        for k in 0..600u64 {
            sched.on_response(JobId::new(j), &dev(k % 97), 1_000 + k, t);
            sched.on_alloc_complete(JobId::new(j), k, t);
        }
    }
    // Warm-up passes grow every scratch buffer (and the score rings, which
    // only fill through assignments) to their high-water marks.
    for _ in 0..4 {
        t = drive(sched.as_mut(), t, 3_000);
    }

    let before = allocations();
    drive(sched.as_mut(), t, 3_000);
    let delta = allocations() - before;
    assert_eq!(
        delta, 0,
        "{label}: steady-state pass performed {delta} allocations"
    );
}

/// One steady-state shard-plane cycle: park one poll per device on the
/// repoll grid, elapse two grid steps (every chain survives and
/// re-parks twice, filling the observation batch), then wake every
/// parked continuation into the queue and drain it as the dispatcher
/// would. The cached session ends prove every elapse alive, so the
/// cycle never touches the device pool at all.
fn drive_shard_cycle(
    plane: &mut ShardPlane,
    queue: &mut EventQueue,
    pool: &mut DevicePool,
    n: usize,
    t: &mut u64,
) {
    const REPOLL: u64 = 60_000;
    const FAR_END: u64 = 1 << 60;
    let base = *t + REPOLL;
    for d in 0..n {
        let seq = queue.reserve_seq();
        plane.park(d, base, seq, FAR_END, Capacity::new(0.5, 0.5));
    }
    *t = base + 2 * REPOLL;
    plane.advance(*t, 0, u64::MAX, REPOLL, pool, queue, true);
    assert_eq!(
        plane.observations().len(),
        2 * n,
        "each chain elapses twice"
    );
    plane.clear_observations();
    plane.wake(queue);
    assert_eq!(plane.len(), 0);
    while queue.pop().is_some() {}
}

/// Warm a shard plane to its steady state, then assert a full
/// park → advance → wake cycle allocates nothing.
fn assert_no_alloc_shard_plane(shards: u32, n: usize, label: &str) {
    let mut pool = DevicePool::lazy(CapacityModel::default(), 7, n);
    for d in 0..n {
        pool.begin_session(d, 1 << 60);
    }
    let mut plane = ShardPlane::new(n, shards);
    let mut queue = EventQueue::with_kind(QueueKind::Heap);
    let mut t = 0_u64;
    for _ in 0..4 {
        drive_shard_cycle(&mut plane, &mut queue, &mut pool, n, &mut t);
    }

    let before = allocations();
    drive_shard_cycle(&mut plane, &mut queue, &mut pool, n, &mut t);
    let delta = allocations() - before;
    assert_eq!(
        delta, 0,
        "{label}: steady-state shard cycle performed {delta} allocations"
    );
}

#[test]
fn schedulers_do_not_allocate_in_steady_state() {
    // The supply window bounds the check-in queue's occupancy; a short
    // window reaches its high-water mark within the warm-up passes.
    let window = VennConfig {
        supply_window_ms: 600_000,
        ..VennConfig::default()
    };
    assert_no_alloc_steady_state(Box::new(VennScheduler::new(window)), "venn");
    assert_no_alloc_steady_state(
        Box::new(VennScheduler::new(VennConfig {
            supply_window_ms: 600_000,
            incremental: false,
            ..VennConfig::default()
        })),
        "venn-full",
    );
    // The FIFO ablation arms exercise the incremental insert and the
    // full-rebuild reference (the old per-refresh `fifo` Vec).
    assert_no_alloc_steady_state(
        Box::new(VennScheduler::new(VennConfig {
            supply_window_ms: 600_000,
            use_irs: false,
            ..VennConfig::default()
        })),
        "venn-wo-sched",
    );
    assert_no_alloc_steady_state(
        Box::new(VennScheduler::new(VennConfig {
            supply_window_ms: 600_000,
            use_irs: false,
            incremental: false,
            ..VennConfig::default()
        })),
        "venn-wo-sched-full",
    );
    // Baselines share the slot-map data plane and the persistent
    // candidate buffer.
    assert_no_alloc_steady_state(Box::new(BaselineScheduler::random_order(42)), "random");
    assert_no_alloc_steady_state(Box::new(BaselineScheduler::fifo()), "fifo");
    assert_no_alloc_steady_state(Box::new(BaselineScheduler::srsf()), "srsf");
    // The sharded execution plane: the k-way-merge fast path (well under
    // the bulk threshold, several shards) and the serial bulk outbox
    // path (past the threshold on one shard, so the lap machinery runs
    // without the deliberately-allocating parallel fan-out).
    assert_no_alloc_shard_plane(4, 512, "shard-plane fast path");
    assert_no_alloc_shard_plane(
        1,
        PAR_THRESHOLD + PAR_THRESHOLD / 2,
        "shard-plane bulk path",
    );
}
