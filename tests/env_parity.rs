//! The `venn-env` subsystem's two headline guarantees:
//!
//! 1. **Env-off parity** — with `--env off` (the default) the kernel is
//!    bit-identical to the pre-environment kernel: replaying the
//!    committed `BENCH_BASELINE.json` matrix reproduces every
//!    deterministic field byte for byte.
//! 2. **Per-seed reproducibility of every preset** — the three new
//!    scenario presets run for every `SchedKind` across seeds with
//!    run-to-run identical results, on both kernel perf arms (gating
//!    on/off, wheel/heap queue).
//!
//! Plus the quorum/abort edge case of the new mid-round dropout path: a
//! round whose dropouts land the report count exactly on the 80 % quorum
//! boundary succeeds, while one more dropout aborts it.
//!
//! Built on the shared differential harness in `tests/common/parity.rs`.

mod common;

use common::parity::{
    assert_outcome_parity, assert_run_parity, contended_workload, every_sched_kind, observe_kind,
    Observed,
};

use venn::bench::{baseline_rows, diff_rows, parse_baseline, run_baseline, SchedKind};
use venn::core::{JobId, SimTime, SpecCategory};
use venn::env::{DeviceFault, EnvConfig, EnvPreset};
use venn::sim::{
    EventKind, QueueKind, RoundRecorder, SimConfig, SimObserver, SimResult, Simulation,
};
use venn::traces::{JobPlan, Workload};

const PRESETS: [EnvPreset; 3] = [
    EnvPreset::FlashCrowd,
    EnvPreset::StragglerHeavy,
    EnvPreset::MassDropout,
];

/// The same small-but-contended experiment the incremental parity
/// harness uses, with a scenario preset applied.
fn experiment(seed: u64, env: EnvPreset) -> (SimConfig, Workload) {
    let sim = SimConfig {
        population: 400,
        days: 2,
        seed,
        env: env.config(),
        ..SimConfig::default()
    };
    (sim, contended_workload(seed))
}

fn run_logged(sim: SimConfig, workload: &Workload, kind: SchedKind) -> Observed {
    observe_kind(sim, workload, kind)
}

/// Replaying the committed benchmark baseline with the environment
/// subsystem compiled in (but off) must reproduce every deterministic
/// field byte for byte — the env-off arm is the pre-environment kernel.
#[test]
fn env_off_reproduces_the_committed_baseline_exactly() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_BASELINE.json");
    let text = std::fs::read_to_string(path).expect("committed baseline present");
    let (seed, committed) = parse_baseline(&text).expect("committed baseline parses");
    let (_, runs) = run_baseline(seed, QueueKind::Wheel, true, EnvPreset::Off);
    let fresh = baseline_rows(&runs);
    assert_eq!(committed.len(), fresh.len(), "scheduler row count");
    for (c, f) in committed.iter().zip(&fresh) {
        let drift = diff_rows(c, f);
        assert!(drift.is_empty(), "{}: {drift:?}", c.name);
    }
    for r in &runs {
        assert!(
            r.result.env.is_empty(),
            "env-off runs must carry no env telemetry"
        );
    }
}

/// Every new preset runs for every `SchedKind` across two seeds with
/// run-to-run identical results — scenarios replay bit for bit per seed.
#[test]
fn presets_replay_identically_for_every_sched_kind() {
    for preset in PRESETS {
        for seed in [101u64, 102] {
            let (sim, workload) = experiment(seed, preset);
            for kind in every_sched_kind() {
                let a = run_logged(sim, &workload, kind);
                let b = run_logged(sim, &workload, kind);
                assert_run_parity(&a, &b, &format!("{preset:?} {kind:?} seed {seed}"));
                assert_eq!(
                    a.result.records.len(),
                    workload.jobs.len(),
                    "{preset:?} {kind:?}"
                );
            }
        }
    }
}

/// The kernel's perf arms stay pure cost optimizations under every
/// preset: gating off and the heap queue reproduce the default arm's
/// assignment streams and results while the environment is injecting
/// churn, stragglers, and faults.
#[test]
fn gating_and_queue_arms_stay_identical_under_env_presets() {
    for preset in PRESETS {
        let (sim, workload) = experiment(103, preset);
        for kind in [SchedKind::Random, SchedKind::Srsf, SchedKind::Venn] {
            let def = run_logged(sim, &workload, kind);
            let ungated = run_logged(
                SimConfig {
                    demand_gating: false,
                    ..sim
                },
                &workload,
                kind,
            );
            let heap = run_logged(
                SimConfig {
                    queue: QueueKind::Heap,
                    ..sim
                },
                &workload,
                kind,
            );
            assert_outcome_parity(
                &def,
                &ungated,
                &format!("{preset:?} {kind:?} vs gating-off"),
            );
            assert_outcome_parity(&def, &heap, &format!("{preset:?} {kind:?} vs heap-queue"));
            // Both default-config arms dispatch the same events; gating
            // is the only thing allowed to shrink the count.
            assert_eq!(def.result.events, heap.result.events, "{preset:?} {kind:?}");
            assert!(
                def.result.events <= ungated.result.events,
                "{preset:?} {kind:?}: gating may only remove events"
            );
        }
    }
}

/// The environment must actually perturb runs: a flash crowd injects
/// supply, stragglers stretch responses, mass dropouts force devices
/// offline.
#[test]
fn presets_visibly_perturb_the_run() {
    let run_preset = |preset| {
        let (sim, workload) = experiment(104, preset);
        run_logged(sim, &workload, SchedKind::Fifo).result
    };
    let off = run_preset(EnvPreset::Off);
    assert!(off.env.is_empty());
    let crowd = run_preset(EnvPreset::FlashCrowd);
    assert_ne!(
        off.events, crowd.events,
        "flash-crowd sessions must change the event stream"
    );
    let straggler = run_preset(EnvPreset::StragglerHeavy);
    assert_eq!(straggler.env.tier_response_ms.len(), 4);
    assert!(
        straggler
            .env
            .tier_response_ms
            .iter()
            .map(|h| h.total())
            .sum::<u64>()
            > 0,
        "tier histograms must fill"
    );
    let dropout = run_preset(EnvPreset::MassDropout);
    assert!(
        dropout.env.forced_offline > 0,
        "mass-offline waves must claim victims: {:?}",
        dropout.env
    );
}

// --- the quorum/abort boundary of the mid-round dropout path ------------

/// Captures round starts and the `Response` events of round 0 of job 0.
#[derive(Default)]
struct RoundZeroTrace {
    round_start: Option<SimTime>,
    responses: Vec<(SimTime, usize)>,
}

impl SimObserver for RoundZeroTrace {
    fn on_event(&mut self, now: SimTime, kind: &EventKind) {
        if let EventKind::Response {
            job,
            epoch: 0,
            device,
            ..
        } = kind
        {
            if job.as_u64() == 0 {
                self.responses.push((now, *device));
            }
        }
    }

    fn on_round_start(&mut self, now: SimTime, job_idx: usize, round: u32) {
        if job_idx == 0 && round == 0 {
            self.round_start = Some(now);
        }
    }
}

fn boundary_workload() -> Workload {
    Workload {
        jobs: vec![JobPlan {
            id: JobId::new(0),
            arrival_ms: 1_000,
            category: SpecCategory::General,
            rounds: 1,
            demand: 5,
            task_ms: 30_000,
        }],
    }
}

fn run_with_faults(w: &Workload, faults: &'static [DeviceFault]) -> (SimResult, RoundRecorder) {
    let config = SimConfig {
        env: EnvConfig {
            faults,
            ..EnvConfig::neutral()
        },
        ..SimConfig::small()
    };
    let mut sched = venn::baselines::BaselineScheduler::fifo();
    let mut rounds = RoundRecorder::default();
    let result = Simulation::new(config).run_observed(w, &mut sched, &mut [&mut rounds]);
    (result, rounds)
}

/// Demand 5 at the paper's 80 % quorum needs exactly 4 reports. Dropping
/// the round's slowest participant mid-round leaves the count exactly
/// *on* the boundary — the round must succeed; dropping the two slowest
/// leaves it one short — the round must abort at its deadline.
#[test]
fn dropouts_on_the_quorum_boundary_succeed_one_fewer_aborts() {
    let w = boundary_workload();
    let config = SimConfig::small();
    assert_eq!(config.quorum_target(5), 4, "80 % of 5 is exactly 4 reports");

    // Observe the untouched round: when it starts and when each of the
    // five participants would report.
    let mut sched = venn::baselines::BaselineScheduler::fifo();
    let mut trace = RoundZeroTrace::default();
    let off = Simulation::new(config).run_observed(&w, &mut sched, &mut [&mut trace]);
    assert!(off.completion_rate() > 0.99, "{:?}", off.records);
    assert_eq!(off.aborted_rounds, 0);
    let t0 = trace.round_start.expect("round 0 started");
    let mut responses = trace.responses.clone();
    assert_eq!(responses.len(), 5, "all five responses fire (stale or not)");
    responses.sort_unstable();

    // Exactly on the boundary: kill the slowest participant mid-round.
    let (t_last, slowest) = responses[4];
    assert!(t_last > t0 + 1, "response must land after the round starts");
    let one: &'static [DeviceFault] = Box::leak(Box::new([DeviceFault {
        at_ms: t_last - 1,
        device: slowest,
    }]));
    let (on_boundary, rounds) = run_with_faults(&w, one);
    assert_eq!(on_boundary.env.forced_offline, 1);
    assert_eq!(
        on_boundary.aborted_rounds, 0,
        "4 of 5 reports is exactly the quorum — the round must succeed"
    );
    assert_eq!(on_boundary.records[0].rounds_completed, 1);
    assert_eq!(
        rounds.rounds[0].participants.len(),
        4,
        "exactly the quorum reported"
    );

    // One fewer: kill the two slowest before either reports.
    let (t_fourth, fourth) = responses[3];
    assert!(t_fourth > t0 + 1);
    let two: &'static [DeviceFault] = Box::leak(Box::new([
        DeviceFault {
            at_ms: t_fourth - 1,
            device: fourth,
        },
        DeviceFault {
            at_ms: t_fourth - 1,
            device: slowest,
        },
    ]));
    let (below, _) = run_with_faults(&w, two);
    assert_eq!(below.env.forced_offline, 2);
    assert!(
        below.records[0].rounds_aborted >= 1,
        "3 of 5 reports misses the quorum — the round must abort: {:?}",
        below.records
    );
    assert!(below.aborted_rounds >= 1);
}
