//! Sharded execution must be *invisible*: for every scheduler, seed, and
//! environment, `ExecMode::Sharded` reproduces the sequential kernel's
//! full observable surface byte for byte — records, round logs,
//! assignment stream, dispatched event trace, peak queue depth, and
//! environment counters.
//!
//! The sweep pins the two halves of that claim separately:
//!
//! - `shards = 1` ⇄ sequential: the shard plane's park/advance/wake
//!   machinery itself (cached session ends, deferred observation replay,
//!   outbox laps) changes nothing even with no partitioning at all.
//! - `shards ∈ {2, 4, 7}` ⇄ `shards = 1`: partitioning and the k-way
//!   `(time, seq)` merge across shard deques — including a shard count
//!   that does not divide the population — change nothing either.
//!
//! Chaos arms route mass-offline waves and scripted faults through
//! `force_device_offline`, exercising the generation-bump invalidation
//! of cached session ends.
//!
//! Built on the shared differential harness in `tests/common/parity.rs`.

mod common;

use common::parity::{assert_run_parity, contended_workload, every_sched_kind, observe_kind};

use venn::env::EnvPreset;
use venn::sim::{ExecMode, SimConfig};

const SEEDS: [u64; 3] = [101, 102, 103];
const SHARD_COUNTS: [u32; 3] = [2, 4, 7];

fn experiment(seed: u64, env: EnvPreset) -> SimConfig {
    SimConfig {
        population: 400,
        days: 2,
        seed,
        env: env.config(),
        // Round participant lists are the finest-grained output; compare
        // them too.
        record_rounds: true,
        ..SimConfig::default()
    }
}

#[test]
fn sharded_matches_sequential_for_every_sched_kind_seed_and_env() {
    for &seed in &SEEDS {
        let workload = contended_workload(seed);
        for env in [EnvPreset::Off, EnvPreset::Chaos] {
            let sim = experiment(seed, env);
            for kind in every_sched_kind() {
                let sequential = observe_kind(sim, &workload, kind);
                let one = observe_kind(
                    SimConfig {
                        exec: ExecMode::Sharded { shards: 1 },
                        ..sim
                    },
                    &workload,
                    kind,
                );
                assert_run_parity(
                    &sequential,
                    &one,
                    &format!("{kind:?} seed {seed} env {env:?}: shards=1 vs sequential"),
                );
                for shards in SHARD_COUNTS {
                    let many = observe_kind(
                        SimConfig {
                            exec: ExecMode::Sharded { shards },
                            ..sim
                        },
                        &workload,
                        kind,
                    );
                    assert_run_parity(
                        &one,
                        &many,
                        &format!("{kind:?} seed {seed} env {env:?}: shards={shards} vs shards=1"),
                    );
                }
            }
        }
    }
}

/// More shards than devices degenerates gracefully: every device still
/// lands in exactly one shard and the run stays byte-identical.
#[test]
fn more_shards_than_devices_is_still_exact() {
    let seed = 7_u64;
    let workload = contended_workload(seed);
    let sim = SimConfig {
        population: 40,
        days: 2,
        seed,
        ..SimConfig::default()
    };
    let sequential = observe_kind(sim, &workload, every_sched_kind()[0]);
    let over = observe_kind(
        SimConfig {
            exec: ExecMode::Sharded { shards: 64 },
            ..sim
        },
        &workload,
        every_sched_kind()[0],
    );
    assert_run_parity(&sequential, &over, "shards=64 on population 40");
}
