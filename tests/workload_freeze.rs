//! Freezing a workload to TSV and replaying it must reproduce the exact
//! same simulation outcome — the reproducibility contract behind
//! `vennsim --save/--load`.

use rand::rngs::StdRng;
use rand::SeedableRng;

use venn::core::{VennConfig, VennScheduler};
use venn::sim::{SimConfig, Simulation};
use venn::traces::io::{from_tsv, to_tsv};
use venn::traces::Workload;

#[test]
fn frozen_workload_replays_identically() {
    let mut rng = StdRng::seed_from_u64(17);
    let original = Workload::default_scenario(10, &mut rng);
    let thawed = from_tsv(&to_tsv(&original)).expect("roundtrip");
    assert_eq!(original, thawed);

    let config = SimConfig {
        population: 1_000,
        days: 4,
        ..SimConfig::default()
    };
    let run = |w: &Workload| {
        let mut sched = VennScheduler::new(VennConfig::default());
        Simulation::new(config).run(w, &mut sched)
    };
    let a = run(&original);
    let b = run(&thawed);
    assert_eq!(a.records, b.records);
    assert_eq!(a.assignments, b.assignments);
}

#[test]
fn tsv_is_stable_under_double_roundtrip() {
    let mut rng = StdRng::seed_from_u64(18);
    let w = Workload::default_scenario(25, &mut rng);
    let once = to_tsv(&w);
    let twice = to_tsv(&from_tsv(&once).expect("parse"));
    assert_eq!(once, twice);
}
