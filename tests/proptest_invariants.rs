//! Property-based tests over the core invariants of the Venn stack.

use proptest::prelude::*;

use venn::core::intern::SpecInterner;
use venn::core::irs::{allocate, GroupSummary};
use venn::core::matching::TierProfiler;
use venn::core::slotmap::{JobSlot, SlotMap};
use venn::core::supply::RegionSupply;
use venn::core::{
    Capacity, DeviceId, DeviceInfo, JobId, Request, ResourceSpec, Scheduler, SupplyEstimator,
    VennConfig, VennScheduler,
};
use venn::opt::{fixed_order_cost, solve, Arrival, Instance};

// --- IRS allocation invariants -------------------------------------------

/// Strategy: up to 6 groups with random supplies/queues plus the atomic
/// regions induced by random nesting.
fn irs_inputs() -> impl Strategy<Value = (Vec<GroupSummary>, Vec<RegionSupply>)> {
    (2usize..6).prop_flat_map(|n| {
        let groups =
            proptest::collection::vec((0.01f64..10.0, 0.0f64..20.0), n).prop_map(move |params| {
                params
                    .iter()
                    .enumerate()
                    .map(|(index, (supply, queue))| GroupSummary {
                        index,
                        eligible_supply: *supply,
                        queue_len: *queue,
                    })
                    .collect::<Vec<_>>()
            });
        // Regions: a handful of non-empty masks over n bits.
        let regions =
            proptest::collection::vec((1u128..(1 << n), 0.01f64..5.0), 1..8).prop_map(|rs| {
                rs.into_iter()
                    .map(|(mask, rate)| RegionSupply { mask, rate })
                    .collect::<Vec<_>>()
            });
        (groups, regions)
    })
}

proptest! {
    /// Every owned region's owner is eligible for it, and every region with
    /// at least one eligible group gets an owner.
    #[test]
    fn irs_owners_are_eligible_and_complete((groups, regions) in irs_inputs()) {
        let plan = allocate(&groups, &regions);
        for r in &regions {
            match plan.owner_of(r.mask) {
                Some(owner) => prop_assert!(r.mask & (1u128 << owner) != 0),
                None => {
                    // Only regions no group is eligible for may be unowned.
                    let any_eligible = groups.iter().any(|g| r.mask & (1u128 << g.index) != 0);
                    prop_assert!(!any_eligible);
                }
            }
        }
    }

    /// The offer order never proposes an ineligible group and never repeats.
    #[test]
    fn irs_offer_order_is_sound((groups, regions) in irs_inputs()) {
        let plan = allocate(&groups, &regions);
        for r in &regions {
            let order: Vec<usize> = plan.offer_order(r.mask).collect();
            let mut seen = std::collections::HashSet::new();
            for g in order {
                prop_assert!(r.mask & (1u128 << g) != 0, "ineligible group offered");
                prop_assert!(seen.insert(g), "group offered twice");
            }
        }
    }
}

// --- Supply estimator invariants ------------------------------------------

proptest! {
    /// Region supplies always partition the total eligible rate.
    #[test]
    fn region_supplies_partition_total(
        caps in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 1..100),
        t1 in 0.0f64..0.8, t2 in 0.0f64..0.8,
    ) {
        let mut s = SupplyEstimator::new(10_000);
        for (cpu, mem) in &caps {
            s.record(100, &Capacity::new(*cpu, *mem));
        }
        let specs = [
            ResourceSpec::any(),
            ResourceSpec::new(t1, 0.0),
            ResourceSpec::new(0.0, t2),
            ResourceSpec::new(t1, t2),
        ];
        let regions = s.region_supplies(200, &specs);
        let total: f64 = regions.iter().map(|r| r.rate).sum();
        let any = s.rate(200, &ResourceSpec::any());
        prop_assert!((total - any).abs() < 1e-9);
        // Masks are unique.
        let mut masks = std::collections::HashSet::new();
        for r in &regions {
            prop_assert!(masks.insert(r.mask));
        }
    }

    /// A stricter spec never has a higher rate than a weaker one.
    #[test]
    fn rates_are_monotone_in_spec(
        caps in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 1..60),
        a in 0.0f64..1.0, b in 0.0f64..1.0,
    ) {
        let mut s = SupplyEstimator::new(10_000);
        for (cpu, mem) in &caps {
            s.record(0, &Capacity::new(*cpu, *mem));
        }
        let weak = ResourceSpec::new(a * 0.5, b * 0.5);
        let strong = ResourceSpec::new(a * 0.5 + 0.3, b * 0.5 + 0.3);
        prop_assert!(s.rate(100, &strong) <= s.rate(100, &weak) + 1e-12);
    }
}

// --- Scheduler conservation ------------------------------------------------

proptest! {
    /// The Venn scheduler never over-assigns: the number of assignments per
    /// request never exceeds its demand plus restored failures, and devices
    /// failing eligibility are never matched.
    #[test]
    fn venn_never_overassigns(
        demands in proptest::collection::vec(1u32..8, 1..5),
        devices in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 1..80),
    ) {
        let mut venn = VennScheduler::new(VennConfig::default());
        let spec = ResourceSpec::new(0.4, 0.4);
        for (i, d) in demands.iter().enumerate() {
            venn.submit(
                Request::new(JobId::new(i as u64), spec, *d, *d as u64),
                i as u64,
            );
        }
        let mut assigned = vec![0u32; demands.len()];
        for (i, (cpu, mem)) in devices.iter().enumerate() {
            let dev = DeviceInfo::new(
                DeviceId::new(i as u64),
                Capacity::new(*cpu, *mem),
            );
            venn.on_check_in(&dev, 1_000 + i as u64);
            if let Some(job) = venn.assign(&dev, 1_000 + i as u64) {
                prop_assert!(spec.is_eligible(dev.capacity()), "ineligible assignment");
                assigned[job.as_u64() as usize] += 1;
            }
        }
        for (a, d) in assigned.iter().zip(&demands) {
            prop_assert!(a <= d, "assigned {a} > demand {d}");
        }
    }
}

// --- Dense data plane: interner and slot map --------------------------------

proptest! {
    /// Interning is a function of the spec alone — equal specs get equal
    /// `GroupId`s at any point of an interleaved submit/complete/churn
    /// stream — and `resolve` inverts `intern` exactly.
    #[test]
    fn interner_round_trips_across_churn(
        ops in proptest::collection::vec((0u8..8, 0u8..8, 0u8..2), 1..120),
    ) {
        let mut interner = SpecInterner::new();
        // Churn rides along: jobs keyed by the same quantized spec space
        // enter and leave a slot map between intern calls, like the
        // scheduler's own submit/complete stream.
        let mut jobs: SlotMap<u32> = SlotMap::new();
        let mut live: Vec<JobSlot> = Vec::new();
        let mut seen: Vec<(ResourceSpec, venn::core::GroupId)> = Vec::new();
        for (i, &(c, m, leave)) in ops.iter().enumerate() {
            let leave = leave == 1;
            let spec = ResourceSpec::new(c as f64 / 8.0, m as f64 / 8.0);
            let (g, fresh) = interner.intern(spec);
            // intern → resolve is the identity.
            prop_assert_eq!(interner.resolve(g), spec);
            match seen.iter().find(|(s, _)| *s == spec) {
                Some(&(_, prev)) => {
                    prop_assert_eq!(prev, g, "same spec must re-intern to the same id");
                    prop_assert!(!fresh);
                }
                None => {
                    prop_assert!(fresh);
                    prop_assert_eq!(g.index(), seen.len(), "ids are dense, first-seen order");
                    seen.push((spec, g));
                }
            }
            live.push(jobs.insert(i as u32));
            if leave && !live.is_empty() {
                let victim = live.swap_remove(i % live.len());
                prop_assert!(jobs.remove(victim).is_some());
            }
        }
        // The full mapping survives the churn intact.
        for (spec, g) in seen {
            prop_assert_eq!(interner.lookup(spec), Some(g));
            prop_assert_eq!(interner.resolve(g), spec);
        }
    }

    /// Slot-map generation safety: over any insert/remove sequence, live
    /// handles always resolve to their own value and every handle whose
    /// entry was removed is rejected forever — even after its slot index
    /// has been reused.
    #[test]
    fn slot_map_rejects_stale_handles(
        ops in proptest::collection::vec((0u8..2, 0usize..64), 1..200),
    ) {
        let mut map: SlotMap<u64> = SlotMap::new();
        let mut live: Vec<(JobSlot, u64)> = Vec::new();
        let mut stale: Vec<JobSlot> = Vec::new();
        let mut next = 0u64;
        for &(remove, pick) in &ops {
            if remove == 1 && !live.is_empty() {
                let (slot, value) = live.swap_remove(pick % live.len());
                prop_assert_eq!(map.remove(slot), Some(value));
                prop_assert_eq!(map.remove(slot), None, "double remove rejected");
                stale.push(slot);
            } else {
                let slot = map.insert(next);
                // A reused index must carry a fresh generation.
                prop_assert!(stale.iter().all(|s| *s != slot));
                live.push((slot, next));
                next += 1;
            }
            prop_assert_eq!(map.len(), live.len());
            for &(slot, value) in &live {
                prop_assert_eq!(map.get(slot), Some(&value));
            }
            for &slot in &stale {
                prop_assert_eq!(map.get(slot), None, "stale handle resolved");
            }
        }
        // Storage stays dense: indices never exceed the high-water mark of
        // simultaneously live entries... which the free list guarantees by
        // construction; spot-check that live handles cover distinct indices.
        let mut idx: Vec<usize> = live.iter().map(|(s, _)| s.index()).collect();
        idx.sort_unstable();
        idx.dedup();
        prop_assert_eq!(idx.len(), live.len());
    }
}

// --- Exact solver vs fixed orders ------------------------------------------

proptest! {
    /// The exact optimum is a lower bound on every feasible fixed order —
    /// including the order Venn would pick.
    #[test]
    fn optimal_lower_bounds_all_orders(
        demands in proptest::collection::vec(1u32..4, 2..4),
        elig_bits in proptest::collection::vec(1u64..8, 12..20),
    ) {
        let n = demands.len();
        let mask_cap = (1u64 << n) - 1;
        let arrivals: Vec<Arrival> = elig_bits
            .iter()
            .enumerate()
            .map(|(i, e)| Arrival { time: i as u64 + 1, eligible: (e & mask_cap).max(1) })
            .collect();
        let inst = Instance::new(demands.clone(), arrivals);
        if let Some(sol) = solve(&inst) {
            // Try all permutations of up to 3 jobs.
            let mut orders: Vec<Vec<usize>> = Vec::new();
            let idx: Vec<usize> = (0..n).collect();
            permute(&idx, &mut Vec::new(), &mut orders);
            for order in orders {
                if let Some(cost) = fixed_order_cost(&inst, &order) {
                    prop_assert!(sol.total_completion() <= cost);
                }
            }
        }
    }
}

fn permute(rest: &[usize], acc: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
    if rest.is_empty() {
        out.push(acc.clone());
        return;
    }
    for (i, &x) in rest.iter().enumerate() {
        let mut next: Vec<usize> = rest.to_vec();
        next.remove(i);
        acc.push(x);
        permute(&next, acc, out);
        acc.pop();
    }
}

// --- Tier profiler invariants -----------------------------------------------

proptest! {
    /// Tier edges are monotone and cover the real line for any profile.
    #[test]
    fn tier_edges_monotone(
        scores in proptest::collection::vec(0.0f64..1.0, 0..40),
        v in 1usize..6,
    ) {
        let mut p = TierProfiler::new();
        for s in &scores {
            p.record_participant(*s);
        }
        let edges = p.tier_edges(v);
        prop_assert_eq!(edges.len(), v + 1);
        prop_assert_eq!(edges[0], f64::NEG_INFINITY);
        prop_assert_eq!(edges[v], f64::INFINITY);
        for w in edges.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
    }

    /// Speed-up factors are positive and the trigger never fires for V = 1.
    #[test]
    fn speedups_positive(
        responses in proptest::collection::vec((0.0f64..1.0, 1_000u64..600_000), 1..60),
        v in 1usize..5,
    ) {
        let mut p = TierProfiler::new();
        for (s, r) in &responses {
            p.record_participant(*s);
            p.record_response(*s, *r);
        }
        p.record_sched_delay(30_000);
        for u in 0..v {
            prop_assert!(p.speedup(v, u) > 0.0);
        }
        prop_assert!(venn::core::matching::decide_tier(&mut p, 1, 0, 1).is_none());
    }
}
