//! Property test for cross-shard merge determinism.
//!
//! Random corners of (seed, population, days, shard count, environment,
//! scheduler) pin two claims about the epoch-barrier merge:
//!
//! 1. **Permutation-free total order** — the merged cross-shard elapse
//!    stream is a strictly increasing `(time, seq)` sequence. This is
//!    `debug_assert`ed inside `ShardPlane` on every applied entry, and
//!    integration tests build with debug assertions on, so simply
//!    driving the runs exercises the pin on every merge step.
//! 2. **Interleaving independence** — running the identical sharded
//!    configuration twice yields byte-identical results, and both match
//!    the sequential arm. The merge order is fixed by `(time, seq)`
//!    alone, never by which worker thread resolved an entry first, so
//!    thread scheduling cannot leak into any observable field.
//!
//! Built on the shared differential harness in `tests/common/parity.rs`.

mod common;

use common::parity::{observe_kind, Observed};

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use venn::bench::SchedKind;
use venn::env::EnvPreset;
use venn::sim::{ExecMode, SimConfig, Simulation};
use venn::traces::Workload;

fn corner(seed: u64, population: usize, days: u32, exec: ExecMode, env: EnvPreset) -> SimConfig {
    SimConfig {
        population,
        days,
        seed,
        exec,
        env: env.config(),
        record_rounds: true,
        ..SimConfig::small()
    }
}

fn assert_byte_identical(a: &Observed, b: &Observed, ctx: &str) {
    prop_assert_eq!(&a.result.records, &b.result.records, "{}: records", ctx);
    prop_assert_eq!(&a.result.rounds, &b.result.rounds, "{}: rounds", ctx);
    prop_assert_eq!(a.result.events, b.result.events, "{}: events", ctx);
    prop_assert_eq!(
        a.result.peak_queue_len,
        b.result.peak_queue_len,
        "{}: peak queue",
        ctx
    );
    prop_assert_eq!(&a.result.env, &b.result.env, "{}: env counters", ctx);
    prop_assert_eq!(&a.log, &b.log, "{}: assignment stream", ctx);
    prop_assert_eq!(&a.trace, &b.trace, "{}: event trace", ctx);
}

proptest! {
    /// Two identical sharded runs are byte-identical to each other and
    /// to the sequential arm, for arbitrary shard counts (including ones
    /// that do not divide the population), environments, and schedulers.
    #[test]
    fn merged_stream_is_a_deterministic_total_order(
        seed in 0_u64..1_000_000,
        population in 120_usize..280,
        days in 2_u32..4,
        shards in 1_u32..9,
        env_pick in 0_u8..2,
        sched_pick in 0_u8..2,
    ) {
        let env = if env_pick == 0 { EnvPreset::Off } else { EnvPreset::Chaos };
        let kind = if sched_pick == 0 { SchedKind::Random } else { SchedKind::Venn };
        let mut rng = StdRng::seed_from_u64(seed);
        let workload = Workload::default_scenario(4, &mut rng);

        let sharded = corner(seed, population, days, ExecMode::Sharded { shards }, env);
        let first = observe_kind(sharded, &workload, kind);
        let second = observe_kind(sharded, &workload, kind);
        assert_byte_identical(&first, &second, "run-to-run");

        let sequential = corner(seed, population, days, ExecMode::Sequential, env);
        let reference = observe_kind(sequential, &workload, kind);
        assert_byte_identical(&reference, &first, "vs sequential");
    }
}

/// Beyond-the-grid sanity: a run that crosses the parallel resolve
/// threshold (population larger than `PAR_THRESHOLD` with gating parking
/// most of it) still replays byte for byte. This drives the bulk outbox
/// path with real worker threads rather than the serial fast path.
#[test]
fn bulk_parallel_path_replays_byte_for_byte() {
    let seed = 99_u64;
    let mut rng = StdRng::seed_from_u64(seed);
    let workload = Workload::default_scenario(6, &mut rng);
    let sim = corner(
        seed,
        venn::sim::shard::PAR_THRESHOLD * 2,
        2,
        ExecMode::Sharded { shards: 4 },
        EnvPreset::Off,
    );
    let a = Simulation::new(sim).run(&workload, &mut *SchedKind::Random.build(seed ^ 0xA5A5));
    let b = Simulation::new(sim).run(&workload, &mut *SchedKind::Random.build(seed ^ 0xA5A5));
    assert_eq!(a.records, b.records);
    assert_eq!(a.events, b.events);
    assert_eq!(a.peak_queue_len, b.peak_queue_len);
}
