//! `SplitEager` ⇄ `Lazy` storage parity.
//!
//! The lazy arm materializes a `DeviceState` only when a device is first
//! touched (session start, hold, environment disturbance) and retires it
//! once the device is idle past its session end. These tests pin the
//! tentpole claim: that storage choice is *invisible* — every record,
//! assignment, event, and environment counter is byte-identical to the
//! dense `SplitEager` reference arm, across schedulers, seeds, and the
//! kitchen-sink chaos environment (whose mass-offline waves and scripted
//! faults hit devices that were never otherwise touched, exercising the
//! absent-device fast paths).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use venn::baselines::BaselineScheduler;
use venn::core::{Scheduler, VennConfig, VennScheduler};
use venn::env::EnvPreset;
use venn::sim::{AssignmentLog, EventTrace, PopMode, SimConfig, SimResult, Simulation};
use venn::traces::Workload;

fn config(seed: u64, population: usize, days: u32, env: EnvPreset) -> SimConfig {
    SimConfig {
        population,
        days,
        seed,
        env: env.config(),
        // Round participant lists are the finest-grained output; compare
        // them too.
        record_rounds: true,
        ..SimConfig::small()
    }
}

fn build_sched(name: &str, seed: u64) -> Box<dyn Scheduler> {
    match name {
        "random" => Box::new(BaselineScheduler::random_order(seed)),
        "venn" => Box::new(VennScheduler::new(VennConfig {
            seed,
            ..VennConfig::default()
        })),
        other => panic!("unknown scheduler arm {other}"),
    }
}

/// Runs one (config, workload, scheduler) cell under the given storage
/// mode, capturing the full observable surface.
fn run_mode(
    base: SimConfig,
    pop_mode: PopMode,
    workload: &Workload,
    sched: &str,
) -> (SimResult, AssignmentLog, EventTrace) {
    let cfg = SimConfig { pop_mode, ..base };
    let mut scheduler = build_sched(sched, cfg.seed ^ 0xA5A5);
    let mut log = AssignmentLog::default();
    let mut trace = EventTrace::default();
    let result =
        Simulation::new(cfg).run_observed(workload, &mut *scheduler, &mut [&mut log, &mut trace]);
    (result, log, trace)
}

fn assert_parity(
    dense: &(SimResult, AssignmentLog, EventTrace),
    lazy: &(SimResult, AssignmentLog, EventTrace),
    ctx: &str,
) {
    let (d, dl, dt) = dense;
    let (l, ll, lt) = lazy;
    assert_eq!(d.records, l.records, "{ctx}: job records");
    assert_eq!(d.rounds, l.rounds, "{ctx}: round logs");
    assert_eq!(d.aborted_rounds, l.aborted_rounds, "{ctx}: aborts");
    assert_eq!(d.assignments, l.assignments, "{ctx}: assignment count");
    assert_eq!(d.failures, l.failures, "{ctx}: failures");
    assert_eq!(d.events, l.events, "{ctx}: dispatched events");
    assert_eq!(d.peak_queue_len, l.peak_queue_len, "{ctx}: peak queue");
    assert_eq!(d.env, l.env, "{ctx}: env counters");
    assert_eq!(dl, ll, "{ctx}: assignment stream");
    assert_eq!(dt, lt, "{ctx}: event trace");
}

#[test]
fn lazy_matches_split_eager_across_seeds_schedulers_and_envs() {
    for seed in [11_u64, 42, 1303] {
        let mut rng = StdRng::seed_from_u64(seed);
        let workload = Workload::default_scenario(8, &mut rng);
        for env in [EnvPreset::Off, EnvPreset::Chaos] {
            for sched in ["random", "venn"] {
                let base = config(seed, 600, 3, env);
                let dense = run_mode(base, PopMode::SplitEager, &workload, sched);
                let lazy = run_mode(base, PopMode::Lazy, &workload, sched);
                assert_parity(
                    &dense,
                    &lazy,
                    &format!("seed {seed} env {env:?} sched {sched}"),
                );
            }
        }
    }
}

/// The O(active) claim itself: on a population far larger than the
/// workload needs, the lazy pool's materialized high-water mark stays a
/// small fraction of the population.
#[test]
fn lazy_arm_materializes_a_fraction_of_the_population() {
    let seed = 42_u64;
    let mut rng = StdRng::seed_from_u64(seed);
    let workload = Workload::default_scenario(6, &mut rng);
    let cfg = SimConfig {
        population: 4_000,
        days: 2,
        seed,
        pop_mode: PopMode::Lazy,
        ..SimConfig::default()
    };
    let mut scheduler = build_sched("venn", seed ^ 0xA5A5);
    let name = scheduler.name().to_string();
    let sim = Simulation::new(cfg);
    let mut world = sim.world(&workload, &name);
    while world.step(&mut *scheduler, &mut []) {}
    let pool = world.devices();
    assert!(pool.is_lazy());
    let peak = pool.peak_live_devices();
    assert!(peak > 0, "some devices must have materialized");
    assert!(
        peak < cfg.population / 2,
        "peak live {peak} should stay far below population {}",
        cfg.population
    );
}

proptest! {
    /// Random corners of (seed, population, days, env, scheduler): every
    /// touch-order interleaving the simulation produces — including env
    /// faults landing on never-touched devices — leaves the lazy arm byte-
    /// identical to the dense split arm.
    #[test]
    fn lazy_parity_holds_on_random_corners(
        seed in 0_u64..1_000_000,
        population in 120_usize..280,
        days in 2_u32..4,
        env_pick in 0_u8..2,
        sched_pick in 0_u8..2,
    ) {
        let env = if env_pick == 0 { EnvPreset::Off } else { EnvPreset::Chaos };
        let sched = if sched_pick == 0 { "random" } else { "venn" };
        let mut rng = StdRng::seed_from_u64(seed);
        let workload = Workload::default_scenario(4, &mut rng);
        let base = config(seed, population, days, env);
        let dense = run_mode(base, PopMode::SplitEager, &workload, sched);
        let lazy = run_mode(base, PopMode::Lazy, &workload, sched);
        let (d, dl, dt) = &dense;
        let (l, ll, lt) = &lazy;
        prop_assert_eq!(&d.records, &l.records);
        prop_assert_eq!(&d.rounds, &l.rounds);
        prop_assert_eq!(d.events, l.events);
        prop_assert_eq!(d.peak_queue_len, l.peak_queue_len);
        prop_assert_eq!(&d.env, &l.env);
        prop_assert_eq!(dl, ll);
        prop_assert_eq!(dt, lt);
    }
}
