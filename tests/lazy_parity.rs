//! `SplitEager` ⇄ `Lazy` storage parity.
//!
//! The lazy arm materializes a `DeviceState` only when a device is first
//! touched (session start, hold, environment disturbance) and retires it
//! once the device is idle past its session end. These tests pin the
//! tentpole claim: that storage choice is *invisible* — every record,
//! assignment, event, and environment counter is byte-identical to the
//! dense `SplitEager` reference arm, across schedulers, seeds, and the
//! kitchen-sink chaos environment (whose mass-offline waves and scripted
//! faults hit devices that were never otherwise touched, exercising the
//! absent-device fast paths).
//!
//! Built on the shared differential harness in `tests/common/parity.rs`.

mod common;

use common::parity::{assert_run_parity, observe, Observed, SCHED_SEED_SALT};

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use venn::baselines::BaselineScheduler;
use venn::core::{Scheduler, VennConfig, VennScheduler};
use venn::env::EnvPreset;
use venn::sim::{PopMode, SimConfig, Simulation};
use venn::traces::Workload;

fn config(seed: u64, population: usize, days: u32, env: EnvPreset) -> SimConfig {
    SimConfig {
        population,
        days,
        seed,
        env: env.config(),
        // Round participant lists are the finest-grained output; compare
        // them too.
        record_rounds: true,
        ..SimConfig::small()
    }
}

fn build_sched(name: &str, seed: u64) -> Box<dyn Scheduler> {
    match name {
        "random" => Box::new(BaselineScheduler::random_order(seed)),
        "venn" => Box::new(VennScheduler::new(VennConfig {
            seed,
            ..VennConfig::default()
        })),
        other => panic!("unknown scheduler arm {other}"),
    }
}

/// Runs one (config, workload, scheduler) cell under the given storage
/// mode, capturing the full observable surface.
fn run_mode(base: SimConfig, pop_mode: PopMode, workload: &Workload, sched: &str) -> Observed {
    let cfg = SimConfig { pop_mode, ..base };
    let mut scheduler = build_sched(sched, cfg.seed ^ SCHED_SEED_SALT);
    observe(cfg, workload, &mut *scheduler)
}

#[test]
fn lazy_matches_split_eager_across_seeds_schedulers_and_envs() {
    for seed in [11_u64, 42, 1303] {
        let mut rng = StdRng::seed_from_u64(seed);
        let workload = Workload::default_scenario(8, &mut rng);
        for env in [EnvPreset::Off, EnvPreset::Chaos] {
            for sched in ["random", "venn"] {
                let base = config(seed, 600, 3, env);
                let dense = run_mode(base, PopMode::SplitEager, &workload, sched);
                let lazy = run_mode(base, PopMode::Lazy, &workload, sched);
                assert_run_parity(
                    &dense,
                    &lazy,
                    &format!("seed {seed} env {env:?} sched {sched}"),
                );
            }
        }
    }
}

/// The O(active) claim itself: on a population far larger than the
/// workload needs, the lazy pool's materialized high-water mark stays a
/// small fraction of the population.
#[test]
fn lazy_arm_materializes_a_fraction_of_the_population() {
    let seed = 42_u64;
    let mut rng = StdRng::seed_from_u64(seed);
    let workload = Workload::default_scenario(6, &mut rng);
    let cfg = SimConfig {
        population: 4_000,
        days: 2,
        seed,
        pop_mode: PopMode::Lazy,
        ..SimConfig::default()
    };
    let mut scheduler = build_sched("venn", seed ^ SCHED_SEED_SALT);
    let name = scheduler.name().to_string();
    let sim = Simulation::new(cfg);
    let mut world = sim.world(&workload, &name);
    while world.step(&mut *scheduler, &mut []) {}
    let pool = world.devices();
    assert!(pool.is_lazy());
    let peak = pool.peak_live_devices();
    assert!(peak > 0, "some devices must have materialized");
    assert!(
        peak < cfg.population / 2,
        "peak live {peak} should stay far below population {}",
        cfg.population
    );
}

proptest! {
    /// Random corners of (seed, population, days, env, scheduler): every
    /// touch-order interleaving the simulation produces — including env
    /// faults landing on never-touched devices — leaves the lazy arm byte-
    /// identical to the dense split arm.
    #[test]
    fn lazy_parity_holds_on_random_corners(
        seed in 0_u64..1_000_000,
        population in 120_usize..280,
        days in 2_u32..4,
        env_pick in 0_u8..2,
        sched_pick in 0_u8..2,
    ) {
        let env = if env_pick == 0 { EnvPreset::Off } else { EnvPreset::Chaos };
        let sched = if sched_pick == 0 { "random" } else { "venn" };
        let mut rng = StdRng::seed_from_u64(seed);
        let workload = Workload::default_scenario(4, &mut rng);
        let base = config(seed, population, days, env);
        let dense = run_mode(base, PopMode::SplitEager, &workload, sched);
        let lazy = run_mode(base, PopMode::Lazy, &workload, sched);
        prop_assert_eq!(&dense.result.records, &lazy.result.records);
        prop_assert_eq!(&dense.result.rounds, &lazy.result.rounds);
        prop_assert_eq!(dense.result.events, lazy.result.events);
        prop_assert_eq!(dense.result.peak_queue_len, lazy.result.peak_queue_len);
        prop_assert_eq!(&dense.result.env, &lazy.result.env);
        prop_assert_eq!(&dense.log, &lazy.log);
        prop_assert_eq!(&dense.trace, &lazy.trace);
    }
}
