//! Cross-crate integration tests: full simulations driving every
//! scheduler, checking the paper's qualitative claims end to end.

use rand::rngs::StdRng;
use rand::SeedableRng;

use venn::baselines::BaselineScheduler;
use venn::core::{Scheduler, VennConfig, VennScheduler, MINUTE_MS};
use venn::sim::{SimConfig, SimResult, Simulation};
use venn::traces::{JobDemandModel, Workload, WorkloadKind};

fn contended_workload(seed: u64, jobs: usize) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    Workload::generate(
        WorkloadKind::Even,
        None,
        jobs,
        &JobDemandModel::default(),
        10.0 * MINUTE_MS as f64,
        &mut rng,
    )
}

fn sim_config() -> SimConfig {
    SimConfig {
        population: 1_500,
        days: 6,
        ..SimConfig::default()
    }
}

fn run_with(workload: &Workload, mut scheduler: Box<dyn Scheduler>) -> SimResult {
    Simulation::new(sim_config()).run(workload, &mut *scheduler)
}

#[test]
fn all_schedulers_complete_a_feasible_workload() {
    let w = contended_workload(1, 12);
    let schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(BaselineScheduler::random_order(1)),
        Box::new(BaselineScheduler::fifo()),
        Box::new(BaselineScheduler::srsf()),
        Box::new(VennScheduler::new(VennConfig::default())),
        Box::new(VennScheduler::new(VennConfig::scheduling_only())),
        Box::new(VennScheduler::new(VennConfig::matching_only())),
        Box::new(VennScheduler::new(VennConfig::with_fairness(2.0))),
    ];
    for s in schedulers {
        let name = s.name().to_string();
        let r = run_with(&w, s);
        assert!(
            r.completion_rate() > 0.9,
            "{name} completed only {:.2}",
            r.completion_rate()
        );
        // Conservation: every record's rounds must match the plan.
        for (rec, plan) in r.records.iter().zip(&w.jobs) {
            if rec.is_finished() {
                assert_eq!(rec.rounds_completed, plan.rounds, "{name}");
            }
        }
    }
}

#[test]
fn naive_per_device_random_scatters_and_stalls() {
    // The paper strengthens its Random baseline from per-device sampling to
    // a randomized fixed order precisely because per-device sampling
    // scatters devices across jobs and stalls round allocation under
    // contention. Our simulator reproduces that pathology.
    let w = contended_workload(1, 12);
    let naive = run_with(&w, Box::new(BaselineScheduler::random_per_device(1)));
    let strong = run_with(&w, Box::new(BaselineScheduler::random_order(1)));
    assert!(
        naive.completion_rate() <= strong.completion_rate(),
        "naive {} vs strengthened {}",
        naive.completion_rate(),
        strong.completion_rate()
    );
}

#[test]
fn venn_beats_random_under_contention() {
    // Average over a few seeds to keep the assertion robust to noise.
    let mut venn_total = 0.0;
    let mut random_total = 0.0;
    for seed in [3u64, 4, 5] {
        let w = contended_workload(seed, 16);
        let random = run_with(&w, Box::new(BaselineScheduler::random_order(seed)));
        let venn = run_with(&w, Box::new(VennScheduler::new(VennConfig::default())));
        assert!(random.completion_rate() > 0.8);
        assert!(venn.completion_rate() > 0.8);
        random_total += random.avg_jct_ms();
        venn_total += venn.avg_jct_ms();
    }
    assert!(
        venn_total < random_total,
        "venn {venn_total} must beat random {random_total}"
    );
}

#[test]
fn jct_decomposes_into_sched_delay_and_response() {
    let w = contended_workload(6, 10);
    let r = run_with(&w, Box::new(VennScheduler::new(VennConfig::default())));
    for rec in r.records.iter().filter(|r| r.is_finished()) {
        let jct = rec.jct_ms().unwrap();
        // Per Fig. 1: JCT >= total sched delay + total response collection
        // (the remainder is aggregation gaps and abort backoffs).
        assert!(rec.sched_delay_ms + rec.response_ms <= jct);
        assert!(rec.response_ms > 0);
    }
}

#[test]
fn identical_seeds_give_identical_results_for_every_scheduler() {
    let w = contended_workload(7, 8);
    for build in [
        || -> Box<dyn Scheduler> { Box::new(BaselineScheduler::random_order(9)) },
        || -> Box<dyn Scheduler> { Box::new(BaselineScheduler::srsf()) },
        || -> Box<dyn Scheduler> { Box::new(VennScheduler::new(VennConfig::default())) },
    ] {
        let a = run_with(&w, build());
        let b = run_with(&w, build());
        assert_eq!(a.records, b.records, "{}", a.scheduler_name);
    }
}

#[test]
fn contention_raises_scheduling_delay() {
    // Same environment, 4 vs 24 jobs: average scheduling delay per round
    // must grow (the paper's Fig. 5 claim).
    let light = contended_workload(8, 4);
    let heavy = contended_workload(8, 24);
    let per_round_delay = |r: &SimResult| {
        let (mut delay, mut rounds) = (0.0, 0u64);
        for rec in &r.records {
            delay += rec.sched_delay_ms as f64;
            rounds += rec.rounds_completed as u64;
        }
        delay / rounds.max(1) as f64
    };
    let l = run_with(&light, Box::new(BaselineScheduler::random_order(2)));
    let h = run_with(&heavy, Box::new(BaselineScheduler::random_order(2)));
    assert!(
        per_round_delay(&h) > per_round_delay(&l),
        "heavy {} <= light {}",
        per_round_delay(&h),
        per_round_delay(&l)
    );
}

#[test]
fn fairness_knob_protects_the_largest_job() {
    let w = contended_workload(10, 16);
    let biggest = (0..w.jobs.len())
        .max_by_key(|&i| w.jobs[i].total_demand())
        .unwrap();
    let plain = run_with(&w, Box::new(VennScheduler::new(VennConfig::default())));
    let fair = run_with(
        &w,
        Box::new(VennScheduler::new(VennConfig::with_fairness(4.0))),
    );
    let jct = |r: &SimResult| r.records[biggest].jct_ms().unwrap_or(u64::MAX);
    // With a strong knob the largest job must not be (much) worse off.
    assert!(
        jct(&fair) <= jct(&plain).saturating_mul(2),
        "fair {} vs plain {}",
        jct(&fair),
        jct(&plain)
    );
}
