//! The durability chaos matrix: every fault kind at every durable-write
//! site of the checkpoint store, plus seeded-random chaos and corrupted
//! checkpoint files — recovery from whatever survives on disk must be
//! **zero-drift** (final accounting byte-identical to the uninterrupted
//! run), every failure typed, and nothing ever panics.
//!
//! Complements `crash_resume.rs`: that suite proves targeted scripted
//! faults behave exactly as designed; this one sweeps the whole
//! fault × site space and the file-corruption space mechanically.

mod common;

use common::parity::{contended_workload, observe_kind, SCHED_SEED_SALT};

use venn::bench::SchedKind;
use venn::core::faultio::{Fault, FaultFs, FaultRule, FioOp, MemFs, SimFs};
use venn::env::EnvPreset;
use venn::sim::{CheckpointStore, ExecMode, PopMode, SimConfig, SimResult, World};
use venn::traces::Workload;

fn experiment(seed: u64) -> SimConfig {
    SimConfig {
        population: 400,
        days: 2,
        seed,
        env: EnvPreset::Chaos.config(),
        pop_mode: PopMode::Eager,
        exec: ExecMode::Sequential,
        ..SimConfig::default()
    }
}

fn assert_result_parity(a: &SimResult, b: &SimResult, ctx: &str) {
    assert_eq!(a.records, b.records, "{ctx}: job records");
    assert_eq!(a.rounds, b.rounds, "{ctx}: round logs");
    assert_eq!(a.aborted_rounds, b.aborted_rounds, "{ctx}: aborts");
    assert_eq!(a.assignments, b.assignments, "{ctx}: assignment count");
    assert_eq!(a.failures, b.failures, "{ctx}: failures");
    assert_eq!(a.events, b.events, "{ctx}: dispatched events");
    assert_eq!(a.peak_queue_len, b.peak_queue_len, "{ctx}: peak queue");
    assert_eq!(a.env, b.env, "{ctx}: env counters");
}

/// Runs the experiment over `fs`, checkpointing every `every` events
/// into `dir`; checkpoint-write errors are collected, never fatal.
/// Returns the write errors (the run itself always goes to completion —
/// checkpointing is a side channel).
fn run_with_checkpoints(
    sim: SimConfig,
    workload: &Workload,
    kind: SchedKind,
    fs: &mut dyn SimFs,
    dir: &str,
    every: u64,
) -> Vec<String> {
    let mut store = CheckpointStore::open(fs, dir, 2).expect("open store");
    let mut sched = kind.build(sim.seed ^ SCHED_SEED_SALT);
    let mut world = World::new(sim, workload, sched.name());
    let mut errors = Vec::new();
    let mut next = every;
    while world.step(&mut *sched, &mut []) {
        if world.events_processed() >= next {
            if let Err(e) = store.write(&world, &*sched) {
                errors.push(e.to_string());
            }
            next = world.events_processed() + every;
        }
    }
    errors
}

/// Resumes from whatever `fs` holds and runs to the end.
fn recover_and_finish(
    sim: SimConfig,
    workload: &Workload,
    kind: SchedKind,
    fs: &mut dyn SimFs,
    dir: &str,
    ctx: &str,
) -> (SimResult, Vec<String>) {
    let mut store = CheckpointStore::open(fs, dir, 2).expect("reopen store");
    let stale = store.clean_stale_tmp().expect("hygiene scan");
    let mut build = || kind.build(sim.seed ^ SCHED_SEED_SALT);
    let outcome = store
        .resume(sim, workload, &mut build)
        .unwrap_or_else(|e| panic!("{ctx}: resume triage errored: {e}"));
    let (mut world, mut sched) = outcome
        .run
        .unwrap_or_else(|| panic!("{ctx}: no checkpoint survived (stale tmp: {stale:?})"));
    while world.step(&mut *sched, &mut []) {}
    (world.finish(&mut []), outcome.warnings)
}

/// One scripted fault at every (site, kind) cell: the first checkpoint
/// publishes clean, the second hits the fault. Whatever the disk holds
/// afterwards must resume the run with zero drift.
#[test]
fn every_fault_kind_at_every_site_recovers_zero_drift() {
    let sim = experiment(7_001);
    let workload = contended_workload(sim.seed);
    let kind = SchedKind::Venn;
    let whole = observe_kind(sim, &workload, kind);
    let every = whole.result.events / 4;

    let sites = [
        (FioOp::Write, ".vsnp.tmp"),
        (FioOp::Sync, ".vsnp.tmp"),
        (FioOp::Rename, ".vsnp"),
    ];
    let faults = [
        Fault::NoSpace,
        Fault::Io,
        Fault::Torn { keep: 5 },
        Fault::CrashAfter,
        Fault::CrashBefore,
    ];
    for (op, pat) in sites {
        for fault in &faults {
            let ctx = format!("{op:?}@{pat} {fault:?}");
            let mut fs = FaultFs::scripted(
                MemFs::new(),
                vec![FaultRule::after(op, pat, 1, fault.clone())],
            );
            let errors = run_with_checkpoints(sim, &workload, kind, &mut fs, "ckpt", every);
            let crashed = fs.is_crashed();
            let (_, injected) = fs.stats();
            assert!(injected >= 1, "{ctx}: the scripted fault never fired");
            if crashed {
                assert!(!errors.is_empty(), "{ctx}: a crash must surface errors");
            } else {
                // Transient faults are absorbed by the retry budget.
                assert!(errors.is_empty(), "{ctx}: unexpected errors {errors:?}");
            }
            let mut disk = fs.into_inner();
            let (result, _) = recover_and_finish(sim, &workload, kind, &mut disk, "ckpt", &ctx);
            assert_result_parity(&whole.result, &result, &ctx);
        }
    }
}

/// Seeded-random chaos (the `--fault-inject` plan): transient faults
/// sprayed over every durable write at 8% per op. The retry budget
/// absorbs most; whatever checkpoints publish, recovery is zero-drift.
#[test]
fn seeded_random_chaos_recovers_zero_drift() {
    let sim = experiment(7_002);
    let workload = contended_workload(sim.seed);
    let kind = SchedKind::Srsf;
    let whole = observe_kind(sim, &workload, kind);
    let every = whole.result.events / 5;

    for chaos_seed in [1u64, 2, 3] {
        let ctx = format!("chaos seed {chaos_seed}");
        let mut fs = FaultFs::random(MemFs::new(), chaos_seed, 0.08);
        let errors = run_with_checkpoints(sim, &workload, kind, &mut fs, "ckpt", every);
        assert!(!fs.is_crashed(), "{ctx}: random plans never crash");
        // Errors (retry budget exhausted) are legitimate under chaos —
        // but they must be typed checkpoint errors, not panics.
        for e in &errors {
            assert!(e.starts_with("checkpoint "), "{ctx}: untyped error {e}");
        }
        let mut disk = fs.into_inner();
        let (result, _) = recover_and_finish(sim, &workload, kind, &mut disk, "ckpt", &ctx);
        assert_result_parity(&whole.result, &result, &ctx);
    }
}

/// Corruption sweep over a published checkpoint *file*: truncations and
/// single-bit flips at sampled offsets. Resume triage must degrade to
/// the older checkpoint with a warning — or accept the file if the
/// mutation was a no-op — and either way finish with zero drift.
#[test]
fn corrupted_newest_checkpoint_degrades_with_warnings() {
    let sim = experiment(7_003);
    let workload = contended_workload(sim.seed);
    let kind = SchedKind::Venn;
    let whole = observe_kind(sim, &workload, kind);
    let every = whole.result.events / 3;

    let mut pristine = MemFs::new();
    let errors = run_with_checkpoints(sim, &workload, kind, &mut pristine, "ckpt", every);
    assert!(errors.is_empty(), "clean run: {errors:?}");
    let ckpts = CheckpointStore::open(&mut pristine, "ckpt", 2)
        .unwrap()
        .list()
        .unwrap();
    assert_eq!(ckpts.len(), 2, "need a fallback checkpoint: {ckpts:?}");
    let newest = ckpts.last().unwrap().1.clone();
    let bytes = pristine.read(&newest).unwrap();

    // 16 truncation points and 16 bit flips, evenly spread.
    let mut mutations: Vec<(String, Vec<u8>)> = Vec::new();
    for i in 0..16usize {
        let cut = bytes.len() * i / 16;
        mutations.push((format!("truncate@{cut}"), bytes[..cut].to_vec()));
    }
    for i in 0..16usize {
        let pos = (bytes.len() - 1) * i / 15;
        let mut m = bytes.clone();
        m[pos] ^= 1 << (i % 8);
        mutations.push((format!("flip@{pos}"), m));
    }

    for (ctx, mutated) in mutations {
        let changed = mutated != bytes;
        let mut disk = pristine.clone();
        disk.write(&newest, &mutated).unwrap();
        let (result, warnings) = recover_and_finish(sim, &workload, kind, &mut disk, "ckpt", &ctx);
        assert_result_parity(&whole.result, &result, &ctx);
        if changed {
            assert!(
                warnings.iter().any(|w| w.contains(&newest)),
                "{ctx}: damage to {newest} must be reported, got {warnings:?}"
            );
        }
    }
}
