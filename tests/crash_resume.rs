//! Checkpoint / crash / resume: a run interrupted at an arbitrary event
//! boundary and rebuilt from its snapshot in a fresh world + scheduler
//! must be **byte-identical** to the uninterrupted run — records, round
//! logs, assignment stream, dispatched event trace, environment
//! counters, peak statistics, everything `assert_run_parity` pins.
//!
//! Four layers:
//!
//! 1. The full differential matrix: every `SchedKind` × {env off, chaos}
//!    × {sequential, 4 shards} × all three population modes, crashed at
//!    the run's halfway point.
//! 2. Property-based random crash points over random run parameters.
//! 3. Targeted edge states: crashing *inside* an allocating/running
//!    round, and crashing with parked (demand-gated) polls pending.
//! 4. Integrity: a truncated or bit-flipped checkpoint is detected as an
//!    error — never a panic, never a silently wrong resume.
//!
//! Built on `tests/common/crash.rs` (in-process crash injection) and
//! `tests/common/parity.rs` (the shared observation harness). Every
//! injected crash also asserts snapshot idempotence — see the harness
//! docs.

mod common;

use common::crash::{observe_kind_crashed, observe_kind_crashed_when};
use common::parity::{
    assert_run_parity, contended_workload, every_sched_kind, observe_kind, SCHED_SEED_SALT,
};

use venn::bench::SchedKind;
use venn::core::faultio::{Fault, FaultFs, FaultRule, FioError, FioOp, MemFs, SimFs};
use venn::env::EnvPreset;
use venn::sim::{
    resume_world, snapshot_world, CheckpointStore, CkptError, ExecMode, JobPhase, PopMode,
    SimConfig, SimResult, World,
};
use venn::traces::Workload;

const POP_MODES: [PopMode; 3] = [PopMode::Eager, PopMode::SplitEager, PopMode::Lazy];

fn experiment(seed: u64, env: EnvPreset, pop_mode: PopMode, exec: ExecMode) -> SimConfig {
    SimConfig {
        population: 400,
        days: 2,
        seed,
        env: env.config(),
        pop_mode,
        exec,
        ..SimConfig::default()
    }
}

/// The full matrix the tentpole promises: all eight scheduler arms,
/// with and without environment dynamics, sequential and sharded, on
/// every population mode — each crashed at its halfway event and
/// required to finish byte-identically to the uninterrupted run.
#[test]
fn crash_at_halfway_is_invisible_across_the_full_matrix() {
    for env in [EnvPreset::Off, EnvPreset::Chaos] {
        for pop_mode in POP_MODES {
            for exec in [ExecMode::Sequential, ExecMode::Sharded { shards: 4 }] {
                let sim = experiment(2_024, env, pop_mode, exec);
                let workload = contended_workload(sim.seed);
                for kind in every_sched_kind() {
                    let ctx = format!("{env:?} {pop_mode:?} {exec:?} {kind:?}");
                    let whole = observe_kind(sim, &workload, kind);
                    assert!(whole.result.events > 10, "{ctx}: trivial run");
                    let crashed =
                        observe_kind_crashed(sim, &workload, kind, whole.result.events / 2);
                    assert_run_parity(&whole, &crashed, &ctx);
                }
            }
        }
    }
}

/// A crash immediately after the *first* event and immediately before
/// the *last* one — the boundary positions a halfway sweep misses.
#[test]
fn crash_at_the_first_and_last_event_boundaries() {
    let sim = experiment(77, EnvPreset::Chaos, PopMode::Lazy, ExecMode::Sequential);
    let workload = contended_workload(sim.seed);
    for kind in [SchedKind::Venn, SchedKind::Srsf] {
        let whole = observe_kind(sim, &workload, kind);
        for crash_after in [1, whole.result.events - 1] {
            let crashed = observe_kind_crashed(sim, &workload, kind, crash_after);
            assert_run_parity(&whole, &crashed, &format!("{kind:?} crash@{crash_after}"));
        }
    }
}

/// Property test over random run parameters and crash points, driven by
/// the deterministic proptest stream (the full `proptest!` macro runs 64
/// cases — too many whole-simulation differentials — so this draws a
/// bounded batch from the same strategies by hand; inputs are a pure
/// function of the case index and replayable from the failure message).
#[test]
fn random_crash_points_resume_byte_identically() {
    use proptest::Strategy;
    let mut rng = proptest::test_rng();
    for case in 0..12 {
        let seed = (0u64..10_000).generate(&mut rng);
        let population = (150usize..450).generate(&mut rng);
        let pop_mode = POP_MODES[(0usize..3).generate(&mut rng)];
        let env = if (0u32..2).generate(&mut rng) == 0 {
            EnvPreset::Off
        } else {
            EnvPreset::Chaos
        };
        let kind = every_sched_kind()[(0usize..8).generate(&mut rng)];
        let exec = match (0u32..3).generate(&mut rng) {
            0 => ExecMode::Sequential,
            _ => ExecMode::Sharded {
                shards: (2u32..6).generate(&mut rng),
            },
        };
        let crash_frac = (0.05f64..0.95).generate(&mut rng);

        let sim = SimConfig {
            population,
            days: 2,
            seed,
            env: env.config(),
            pop_mode,
            exec,
            ..SimConfig::default()
        };
        let workload = contended_workload(seed);
        let whole = observe_kind(sim, &workload, kind);
        let crash_after = ((whole.result.events as f64) * crash_frac) as u64;
        let crashed = observe_kind_crashed(sim, &workload, kind, crash_after.max(1));
        assert_run_parity(
            &whole,
            &crashed,
            &format!(
                "case {case}: seed {seed} pop {population} {pop_mode:?} {env:?} \
                 {exec:?} {kind:?} crash@{crash_after}"
            ),
        );
    }
}

/// Crashing while a round is mid-flight — devices held, responses
/// outstanding — must restore the allocation in progress exactly.
#[test]
fn crash_inside_an_active_round_is_invisible() {
    let sim = experiment(31, EnvPreset::Off, PopMode::Eager, ExecMode::Sequential);
    let workload = contended_workload(sim.seed);
    for kind in [SchedKind::Venn, SchedKind::Fifo] {
        let whole = observe_kind(sim, &workload, kind);
        let mut crashed_at = None;
        let crashed = observe_kind_crashed_when(
            sim,
            &workload,
            kind,
            |world: &World| {
                (0..world.jobs.len()).any(|i| {
                    let j = world.jobs.get(i);
                    matches!(j.phase, JobPhase::Allocating | JobPhase::Running)
                        && !j.held.is_empty()
                })
            },
            &mut crashed_at,
        );
        assert!(
            crashed_at.is_some(),
            "{kind:?}: the workload must reach a mid-round state"
        );
        assert_run_parity(&whole, &crashed, &format!("{kind:?} mid-round crash"));
    }
}

/// Crashing with demand-gated polls parked (on both the sequential plane
/// and the sharded plane) must preserve their reserved `(time, seq)`
/// identities — later wake-ups re-enter the stream at their original
/// tie-break positions.
#[test]
fn crash_with_parked_polls_is_invisible() {
    for exec in [ExecMode::Sequential, ExecMode::Sharded { shards: 3 }] {
        let sim = experiment(93, EnvPreset::Off, PopMode::SplitEager, exec);
        let workload = contended_workload(sim.seed);
        let kind = SchedKind::Venn;
        let whole = observe_kind(sim, &workload, kind);
        let mut crashed_at = None;
        let crashed = observe_kind_crashed_when(
            sim,
            &workload,
            kind,
            |world: &World| world.parked_poll_count() > 20,
            &mut crashed_at,
        );
        assert!(
            crashed_at.is_some(),
            "{exec:?}: the run must park polls under demand gating"
        );
        assert_run_parity(&whole, &crashed, &format!("{exec:?} parked-poll crash"));
    }
}

/// Damage detection: every truncation length and a sweep of single-bit
/// flips across the container must yield a clean error — the resume path
/// never panics and never accepts damaged bytes.
#[test]
fn truncated_and_bit_flipped_checkpoints_are_rejected() {
    let sim = experiment(55, EnvPreset::Chaos, PopMode::Lazy, ExecMode::Sequential);
    let workload = contended_workload(sim.seed);
    let kind = SchedKind::Venn;
    let mut sched = kind.build(sim.seed ^ SCHED_SEED_SALT);
    let mut world = World::new(sim, &workload, sched.name());
    for _ in 0..500 {
        assert!(world.step(&mut *sched, &mut []), "run too short");
    }
    let bytes = snapshot_world(&world, &*sched).expect("snapshot");

    // Undamaged control: the bytes resume cleanly.
    let mut fresh = kind.build(sim.seed ^ SCHED_SEED_SALT);
    resume_world(&bytes, sim, &workload, &mut *fresh).expect("clean resume");

    // Every truncation point in the frame header, and a spread through
    // the body.
    for cut in (0..32.min(bytes.len())).chain((32..bytes.len()).step_by(997)) {
        let mut fresh = kind.build(sim.seed ^ SCHED_SEED_SALT);
        assert!(
            resume_world(&bytes[..cut], sim, &workload, &mut *fresh).is_err(),
            "truncation to {cut} bytes must be rejected"
        );
    }

    // Single-bit flips: all header bytes, sampled body bytes.
    for pos in (0..28.min(bytes.len())).chain((28..bytes.len()).step_by(499)) {
        for bit in [0u8, 3, 7] {
            let mut damaged = bytes.clone();
            damaged[pos] ^= 1 << bit;
            if damaged == bytes {
                continue;
            }
            let mut fresh = kind.build(sim.seed ^ SCHED_SEED_SALT);
            assert!(
                resume_world(&damaged, sim, &workload, &mut *fresh).is_err(),
                "bit flip at byte {pos} bit {bit} must be rejected"
            );
        }
    }
}

/// Result-level zero-drift comparison for checkpoint-store recovery:
/// the resumed run's final accounting must match the uninterrupted
/// run's byte for byte. (The full-stream `assert_run_parity` does not
/// apply here — resume from an *earlier* checkpoint legitimately
/// re-dispatches the events between the checkpoint and the crash, so
/// observers outside the world would see that window twice.)
fn assert_result_parity(a: &SimResult, b: &SimResult, ctx: &str) {
    assert_eq!(a.records, b.records, "{ctx}: job records");
    assert_eq!(a.rounds, b.rounds, "{ctx}: round logs");
    assert_eq!(a.aborted_rounds, b.aborted_rounds, "{ctx}: aborts");
    assert_eq!(a.assignments, b.assignments, "{ctx}: assignment count");
    assert_eq!(a.failures, b.failures, "{ctx}: failures");
    assert_eq!(a.events, b.events, "{ctx}: dispatched events");
    assert_eq!(a.peak_queue_len, b.peak_queue_len, "{ctx}: peak queue");
    assert_eq!(a.env, b.env, "{ctx}: env counters");
}

/// Drives a run over a [`CheckpointStore`], checkpointing every
/// `every` events, until `crash_at` events have dispatched (the crash)
/// or the run ends. Checkpoint write errors go to `on_write` so callers
/// can assert the typed failure they scripted.
fn run_store_until(
    sim: SimConfig,
    workload: &Workload,
    kind: SchedKind,
    store: &mut CheckpointStore,
    every: u64,
    crash_at: u64,
    on_write: &mut dyn FnMut(Result<String, CkptError>),
) {
    let mut sched = kind.build(sim.seed ^ SCHED_SEED_SALT);
    let mut world = World::new(sim, workload, sched.name());
    let mut next = every;
    while world.events_processed() < crash_at && world.step(&mut *sched, &mut []) {
        if world.events_processed() >= next {
            on_write(store.write(&world, &*sched));
            next = world.events_processed() + every;
        }
    }
    // The crash: world and scheduler drop here; only the store's
    // backend survives into the "new process".
}

/// Resumes from whatever the store holds and runs to completion.
fn resume_store_to_end(
    sim: SimConfig,
    workload: &Workload,
    kind: SchedKind,
    disk: &mut dyn SimFs,
    dir: &str,
) -> (SimResult, Vec<String>) {
    let mut store = CheckpointStore::open(disk, dir, 2).expect("open store on survivor disk");
    let mut build = || kind.build(sim.seed ^ SCHED_SEED_SALT);
    let outcome = store
        .resume(sim, workload, &mut build)
        .expect("resume triage must not error");
    let (mut world, mut sched) = outcome.run.expect("a checkpoint must survive");
    while world.step(&mut *sched, &mut []) {}
    (world.finish(&mut []), outcome.warnings)
}

/// Transient ENOSPC / torn writes during checkpoint publication are
/// absorbed by retry-with-backoff: every `store.write` still succeeds,
/// the faults are visible only in the injector's stats, and a crash
/// later in the run resumes from the (fault-tested) checkpoints with
/// zero drift.
#[test]
fn transient_faults_during_checkpoint_are_absorbed_by_retry() {
    let sim = experiment(641, EnvPreset::Chaos, PopMode::Eager, ExecMode::Sequential);
    let workload = contended_workload(sim.seed);
    let kind = SchedKind::Venn;
    let whole = observe_kind(sim, &workload, kind);
    let every = whole.result.events / 6;
    let crash_at = whole.result.events * 2 / 3;

    // First checkpoint clean; the second hits ENOSPC on attempt one;
    // a later one hits a torn tmp write. Both retries must succeed.
    let mut fs = FaultFs::scripted(
        MemFs::new(),
        vec![
            FaultRule::after(FioOp::Write, ".vsnp.tmp", 1, Fault::NoSpace),
            FaultRule::after(FioOp::Write, ".vsnp.tmp", 1, Fault::Torn { keep: 7 }),
        ],
    );
    {
        let mut store = CheckpointStore::open(&mut fs, "ckpt", 2).expect("open");
        run_store_until(
            sim,
            &workload,
            kind,
            &mut store,
            every,
            crash_at,
            &mut |r| {
                r.expect("retry must absorb transient checkpoint faults");
            },
        );
    }
    let (_, injected) = fs.stats();
    assert_eq!(injected, 2, "both scripted faults must have fired");

    let mut disk = fs.into_inner();
    let (result, warnings) = resume_store_to_end(sim, &workload, kind, &mut disk, "ckpt");
    assert!(warnings.is_empty(), "no degraded checkpoints: {warnings:?}");
    assert_result_parity(&whole.result, &result, "transient-fault checkpoints");
}

/// Persistent ENOSPC exhausts the retry budget and surfaces as a typed
/// `CkptError::Io` — and the *previous* checkpoint, published before
/// the disk filled up, still resumes the run with zero drift.
#[test]
fn persistent_enospc_surfaces_typed_and_older_checkpoint_still_resumes() {
    let sim = experiment(642, EnvPreset::Chaos, PopMode::Lazy, ExecMode::Sequential);
    let workload = contended_workload(sim.seed);
    let kind = SchedKind::Srsf;
    let whole = observe_kind(sim, &workload, kind);
    let every = whole.result.events / 5;
    let crash_at = whole.result.events * 3 / 5;

    // Checkpoint 1 clean; checkpoint 2 fails on all four write attempts.
    let mut fs = FaultFs::scripted(
        MemFs::new(),
        vec![
            FaultRule::after(FioOp::Write, ".vsnp.tmp", 1, Fault::NoSpace),
            FaultRule::on(FioOp::Write, ".vsnp.tmp", Fault::NoSpace),
            FaultRule::on(FioOp::Write, ".vsnp.tmp", Fault::NoSpace),
            FaultRule::on(FioOp::Write, ".vsnp.tmp", Fault::NoSpace),
        ],
    );
    let mut write_errors = Vec::new();
    {
        let mut store = CheckpointStore::open(&mut fs, "ckpt", 2).expect("open");
        run_store_until(
            sim,
            &workload,
            kind,
            &mut store,
            every,
            crash_at,
            &mut |r| {
                if let Err(e) = r {
                    write_errors.push(e);
                }
            },
        );
    }
    assert!(
        write_errors
            .iter()
            .any(|e| matches!(e, CkptError::Io(FioError::NoSpace { .. }))),
        "the exhausted retry must surface as a typed ENOSPC: {write_errors:?}"
    );

    let mut disk = fs.into_inner();
    assert!(
        !disk.list("ckpt").expect("list").is_empty(),
        "checkpoint 1 must have survived the full disk"
    );
    let (result, _) = resume_store_to_end(sim, &workload, kind, &mut disk, "ckpt");
    assert_result_parity(&whole.result, &result, "persistent-ENOSPC fallback");
}

/// A crash *before the rename* that publishes a checkpoint strands a
/// `.tmp` file and nothing else: startup hygiene removes it (logging
/// the name), listing never shows it, and resume falls back to the
/// previous published checkpoint with zero drift.
#[test]
fn crash_before_rename_strands_tmp_and_resume_falls_back() {
    let sim = experiment(
        643,
        EnvPreset::Off,
        PopMode::SplitEager,
        ExecMode::Sequential,
    );
    let workload = contended_workload(sim.seed);
    let kind = SchedKind::Venn;
    let whole = observe_kind(sim, &workload, kind);
    let every = whole.result.events / 5;

    // Checkpoint 1 publishes; checkpoint 2 crashes between the tmp
    // write and the rename — exactly the window atomic publish protects.
    let mut fs = FaultFs::scripted(
        MemFs::new(),
        vec![FaultRule::after(
            FioOp::Rename,
            ".vsnp",
            1,
            Fault::CrashBefore,
        )],
    );
    let mut write_errors = Vec::new();
    {
        let mut store = CheckpointStore::open(&mut fs, "ckpt", 2).expect("open");
        run_store_until(
            sim,
            &workload,
            kind,
            &mut store,
            every,
            u64::MAX,
            &mut |r| {
                if let Err(e) = r {
                    write_errors.push(e);
                }
            },
        );
    }
    assert!(fs.is_crashed(), "the scripted crash must have fired");
    assert!(
        write_errors
            .iter()
            .all(|e| matches!(e, CkptError::Io(FioError::Crashed))),
        "post-crash writes surface as typed Crashed errors: {write_errors:?}"
    );

    // The "reboot": inspect the survivor disk directly.
    let mut disk = fs.into_inner();
    let names = disk.list("ckpt").expect("list");
    assert!(
        names.iter().any(|n| n.ends_with(".vsnp.tmp")),
        "the crash must strand a tmp file: {names:?}"
    );
    {
        let mut store = CheckpointStore::open(&mut disk, "ckpt", 2).expect("open");
        let removed = store.clean_stale_tmp().expect("hygiene scan");
        assert_eq!(removed.len(), 1, "exactly the stranded tmp: {removed:?}");
        assert!(removed[0].starts_with("ckpt-") && removed[0].ends_with(".vsnp.tmp"));
        let listed = store.list().expect("list");
        assert_eq!(listed.len(), 1, "only checkpoint 1 is published");
    }
    assert!(
        !disk
            .list("ckpt")
            .expect("list")
            .iter()
            .any(|n| n.ends_with(".tmp")),
        "hygiene must actually remove the tmp file"
    );
    let (result, _) = resume_store_to_end(sim, &workload, kind, &mut disk, "ckpt");
    assert_result_parity(&whole.result, &result, "crash-before-rename fallback");
}

/// A snapshot taken under one run identity must not resume another:
/// different seed, different population, different pop mode, different
/// scheduler — each is a distinct run and must be refused.
#[test]
fn snapshots_are_pinned_to_their_run_identity() {
    let sim = experiment(12, EnvPreset::Off, PopMode::Eager, ExecMode::Sequential);
    let workload = contended_workload(sim.seed);
    let kind = SchedKind::Venn;
    let mut sched = kind.build(sim.seed ^ SCHED_SEED_SALT);
    let mut world = World::new(sim, &workload, sched.name());
    for _ in 0..200 {
        assert!(world.step(&mut *sched, &mut []), "run too short");
    }
    let bytes = snapshot_world(&world, &*sched).expect("snapshot");

    let wrong: [(&str, SimConfig, &Workload, SchedKind); 4] = [
        ("seed", SimConfig { seed: 13, ..sim }, &workload, kind),
        (
            "population",
            SimConfig {
                population: 401,
                ..sim
            },
            &workload,
            kind,
        ),
        (
            "pop mode",
            SimConfig {
                pop_mode: PopMode::Lazy,
                ..sim
            },
            &workload,
            kind,
        ),
        ("scheduler", sim, &workload, SchedKind::Fifo),
    ];
    for (what, config, w, k) in wrong {
        let mut fresh = k.build(config.seed ^ SCHED_SEED_SALT);
        assert!(
            resume_world(&bytes, config, w, &mut *fresh).is_err(),
            "a snapshot must not resume under a different {what}"
        );
    }

    // But a different queue kind / exec mode is the *same* run.
    for (what, config) in [
        (
            "queue kind",
            SimConfig {
                queue: venn::sim::QueueKind::Heap,
                ..sim
            },
        ),
        (
            "exec mode",
            SimConfig {
                exec: ExecMode::Sharded { shards: 4 },
                ..sim
            },
        ),
    ] {
        let mut fresh = kind.build(sim.seed ^ SCHED_SEED_SALT);
        assert!(
            resume_world(&bytes, config, &workload, &mut *fresh).is_ok(),
            "a snapshot must resume under a different {what}"
        );
    }
}
