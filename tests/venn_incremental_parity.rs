//! Incremental Venn scheduling must be observationally identical to the
//! full-rebuild reference: same assignment stream, same final JCT stats,
//! for every `SchedKind` across several seeds.
//!
//! The assignment stream (every `(time, job, device)` decision, in order)
//! is the scheduler's complete observable output, so equal streams on the
//! same deterministic environment mean the delta maintenance in
//! `venn_core::venn` cannot have changed behavior — only cost.
//!
//! Built on the shared differential harness in `tests/common/parity.rs`.

mod common;

use common::parity::{
    assert_outcome_parity, assert_run_parity, contended_workload, every_sched_kind, observe,
    observe_kind, SCHED_SEED_SALT,
};

use venn::bench::SchedKind;
use venn::core::VennConfig;
use venn::sim::{QueueKind, SimConfig};

const SEEDS: [u64; 3] = [101, 102, 103];

/// A small but contended experiment: enough churn to cross the periodic
/// refresh interval and exercise steals, tiers, and re-submissions.
fn experiment(seed: u64) -> SimConfig {
    SimConfig {
        population: 400,
        days: 2,
        seed,
        ..SimConfig::default()
    }
}

/// The Venn configuration behind each Venn-flavoured `SchedKind`, if any.
fn venn_config_of(kind: SchedKind) -> Option<VennConfig> {
    match kind {
        SchedKind::Venn => Some(VennConfig::default()),
        SchedKind::VennWoSched => Some(VennConfig::matching_only()),
        SchedKind::VennWoMatch => Some(VennConfig::scheduling_only()),
        SchedKind::VennWith(cfg) => Some(cfg),
        SchedKind::Random | SchedKind::Fifo | SchedKind::Srsf => None,
    }
}

#[test]
fn incremental_equals_full_rebuild_for_every_sched_kind() {
    for &seed in &SEEDS {
        let sim = experiment(seed);
        let workload = contended_workload(seed);
        for kind in every_sched_kind() {
            let (inc, full) = match venn_config_of(kind) {
                Some(cfg) => {
                    let sched_seed = sim.seed ^ SCHED_SEED_SALT;
                    let mut a = venn::core::VennScheduler::new(VennConfig {
                        incremental: true,
                        seed: sched_seed,
                        ..cfg
                    });
                    let mut b = venn::core::VennScheduler::new(VennConfig {
                        incremental: false,
                        seed: sched_seed,
                        ..cfg
                    });
                    (
                        observe(sim, &workload, &mut a),
                        observe(sim, &workload, &mut b),
                    )
                }
                // Baselines have no rebuild machinery: parity degenerates
                // to determinism across two runs, asserted all the same so
                // the harness covers every `SchedKind`.
                None => (
                    observe_kind(sim, &workload, kind),
                    observe_kind(sim, &workload, kind),
                ),
            };
            assert_run_parity(&inc, &full, &format!("{kind:?} seed {seed}"));
        }
    }
}

/// Demand gating and the timing-wheel queue are kernel *cost*
/// optimizations: for every `SchedKind` and seed, the gated/wheel default
/// must produce the exact assignment stream and JCT stats of the
/// un-gated and heap-queue reference arms. Only the dispatched event
/// count may shrink — and only via gating.
#[test]
fn gating_and_queue_arms_are_behavior_identical_for_every_sched_kind() {
    for &seed in &SEEDS {
        let sim = experiment(seed);
        let workload = contended_workload(seed);
        for kind in every_sched_kind() {
            let def = observe_kind(sim, &workload, kind);
            let ungated = observe_kind(
                SimConfig {
                    demand_gating: false,
                    ..sim
                },
                &workload,
                kind,
            );
            let heap = observe_kind(
                SimConfig {
                    queue: QueueKind::Heap,
                    ..sim
                },
                &workload,
                kind,
            );
            assert_outcome_parity(
                &def,
                &ungated,
                &format!("{kind:?} seed {seed} vs gating-off"),
            );
            assert_outcome_parity(&def, &heap, &format!("{kind:?} seed {seed} vs heap-queue"));
            // Both default-config arms dispatch the same events; gating is
            // the only thing allowed to shrink the count.
            assert_eq!(
                def.result.events, heap.result.events,
                "{kind:?} seed {seed}"
            );
            assert!(
                def.result.events <= ungated.result.events,
                "{kind:?} seed {seed}: gating may only remove events"
            );
        }
    }
}

#[test]
fn full_rebuild_kind_reports_suffixed_name() {
    let sim = experiment(SEEDS[0]);
    let workload = contended_workload(SEEDS[0]);
    let mut sched = venn::core::VennScheduler::new(VennConfig::full_rebuild());
    let run = observe(sim, &workload, &mut sched);
    assert_eq!(run.result.scheduler_name, "venn-full");
}
