//! Incremental Venn scheduling must be observationally identical to the
//! full-rebuild reference: same assignment stream, same final JCT stats,
//! for every `SchedKind` across several seeds.
//!
//! The assignment stream (every `(time, job, device)` decision, in order)
//! is the scheduler's complete observable output, so equal streams on the
//! same deterministic environment mean the delta maintenance in
//! `venn_core::venn` cannot have changed behavior — only cost.

use rand::rngs::StdRng;
use rand::SeedableRng;

use venn::bench::{Experiment, SchedKind};
use venn::core::{Scheduler, VennConfig, MINUTE_MS};
use venn::sim::{AssignmentLog, QueueKind, SimConfig, SimResult, Simulation};
use venn::traces::{JobDemandModel, Workload, WorkloadKind};

const SEEDS: [u64; 3] = [101, 102, 103];

/// A small but contended experiment: enough churn to cross the periodic
/// refresh interval and exercise steals, tiers, and re-submissions.
fn experiment(seed: u64) -> Experiment {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xBEEF);
    let workload = Workload::generate(
        WorkloadKind::Even,
        None,
        6,
        &JobDemandModel {
            rounds_mean: 3.0,
            rounds_max: 5,
            demand_mean: 10.0,
            demand_max: 20,
            ..JobDemandModel::default()
        },
        10.0 * MINUTE_MS as f64,
        &mut rng,
    );
    Experiment {
        sim: SimConfig {
            population: 400,
            days: 2,
            seed,
            ..SimConfig::default()
        },
        workload,
    }
}

fn run_logged(exp: &Experiment, scheduler: &mut dyn Scheduler) -> (SimResult, AssignmentLog) {
    let mut log = AssignmentLog::default();
    let result = Simulation::new(exp.sim).run_observed(&exp.workload, scheduler, &mut [&mut log]);
    (result, log)
}

/// The Venn configuration behind each Venn-flavoured `SchedKind`, if any.
fn venn_config_of(kind: SchedKind) -> Option<VennConfig> {
    match kind {
        SchedKind::Venn => Some(VennConfig::default()),
        SchedKind::VennWoSched => Some(VennConfig::matching_only()),
        SchedKind::VennWoMatch => Some(VennConfig::scheduling_only()),
        SchedKind::VennWith(cfg) => Some(cfg),
        SchedKind::Random | SchedKind::Fifo | SchedKind::Srsf => None,
    }
}

fn every_sched_kind() -> Vec<SchedKind> {
    vec![
        SchedKind::Random,
        SchedKind::Fifo,
        SchedKind::Srsf,
        SchedKind::Venn,
        SchedKind::VennWoSched,
        SchedKind::VennWoMatch,
        SchedKind::VennWith(VennConfig::with_fairness(2.0)),
        SchedKind::VennWith(VennConfig {
            use_steal: false,
            ..VennConfig::default()
        }),
    ]
}

#[test]
fn incremental_equals_full_rebuild_for_every_sched_kind() {
    for &seed in &SEEDS {
        let exp = experiment(seed);
        for kind in every_sched_kind() {
            let (inc, full): ((SimResult, AssignmentLog), (SimResult, AssignmentLog)) =
                match venn_config_of(kind) {
                    Some(cfg) => {
                        let sched_seed = exp.sim.seed ^ 0xA5A5;
                        let mut a = venn::core::VennScheduler::new(VennConfig {
                            incremental: true,
                            seed: sched_seed,
                            ..cfg
                        });
                        let mut b = venn::core::VennScheduler::new(VennConfig {
                            incremental: false,
                            seed: sched_seed,
                            ..cfg
                        });
                        (run_logged(&exp, &mut a), run_logged(&exp, &mut b))
                    }
                    // Baselines have no rebuild machinery: parity degenerates
                    // to determinism across two runs, asserted all the same so
                    // the harness covers every `SchedKind`.
                    None => {
                        let mut a = kind.build(exp.sim.seed ^ 0xA5A5);
                        let mut b = kind.build(exp.sim.seed ^ 0xA5A5);
                        (run_logged(&exp, &mut *a), run_logged(&exp, &mut *b))
                    }
                };
            let ((r_inc, log_inc), (r_full, log_full)) = (inc, full);
            assert_eq!(
                log_inc.assignments, log_full.assignments,
                "{kind:?} seed {seed}: assignment streams diverged"
            );
            assert_eq!(
                r_inc.records, r_full.records,
                "{kind:?} seed {seed}: final JCT stats diverged"
            );
            assert_eq!(
                r_inc.assignments, r_full.assignments,
                "{kind:?} seed {seed}"
            );
            assert_eq!(
                r_inc.aborted_rounds, r_full.aborted_rounds,
                "{kind:?} seed {seed}"
            );
            assert_eq!(r_inc.events, r_full.events, "{kind:?} seed {seed}");
        }
    }
}

/// Demand gating and the timing-wheel queue are kernel *cost*
/// optimizations: for every `SchedKind` and seed, the gated/wheel default
/// must produce the exact assignment stream and JCT stats of the
/// un-gated and heap-queue reference arms. Only the dispatched event
/// count may shrink — and only via gating.
#[test]
fn gating_and_queue_arms_are_behavior_identical_for_every_sched_kind() {
    for &seed in &SEEDS {
        let exp = experiment(seed);
        for kind in every_sched_kind() {
            let run_arm = |sim: SimConfig| {
                let arm = Experiment {
                    sim,
                    workload: exp.workload.clone(),
                };
                let mut sched = kind.build(exp.sim.seed ^ 0xA5A5);
                run_logged(&arm, &mut *sched)
            };
            let (r_def, log_def) = run_arm(exp.sim);
            let (r_ungated, log_ungated) = run_arm(SimConfig {
                demand_gating: false,
                ..exp.sim
            });
            let (r_heap, log_heap) = run_arm(SimConfig {
                queue: QueueKind::Heap,
                ..exp.sim
            });
            for (label, r, log) in [
                ("gating-off", &r_ungated, &log_ungated),
                ("heap-queue", &r_heap, &log_heap),
            ] {
                assert_eq!(
                    log_def.assignments, log.assignments,
                    "{kind:?} seed {seed} vs {label}: assignment streams diverged"
                );
                assert_eq!(
                    r_def.records, r.records,
                    "{kind:?} seed {seed} vs {label}: JCT stats diverged"
                );
                assert_eq!(r_def.aborted_rounds, r.aborted_rounds, "{kind:?} {label}");
                assert_eq!(r_def.assignments, r.assignments, "{kind:?} {label}");
                assert_eq!(r_def.failures, r.failures, "{kind:?} {label}");
            }
            // Both default-config arms dispatch the same events; gating is
            // the only thing allowed to shrink the count.
            assert_eq!(r_def.events, r_heap.events, "{kind:?} seed {seed}");
            assert!(
                r_def.events <= r_ungated.events,
                "{kind:?} seed {seed}: gating may only remove events"
            );
        }
    }
}

#[test]
fn full_rebuild_kind_reports_suffixed_name() {
    let exp = experiment(SEEDS[0]);
    let mut sched = venn::core::VennScheduler::new(VennConfig::full_rebuild());
    let (result, _) = run_logged(&exp, &mut sched);
    assert_eq!(result.scheduler_name, "venn-full");
}
