//! Every scheduler variant the evaluation knows, driven through one small
//! simulation — and the parallel sweep executor checked against
//! sequential execution.

use rand::rngs::StdRng;
use rand::SeedableRng;

use venn::bench::{
    run, run_matrix, run_matrix_sequential, with_baseline, Experiment, Matrix, SchedKind,
};
use venn::core::{VennConfig, MINUTE_MS};
use venn::sim::SimConfig;
use venn::traces::{JobDemandModel, Workload, WorkloadKind};

/// A fast experiment: 8 modest jobs on the `SimConfig::small` environment.
fn small_experiment(seed: u64) -> Experiment {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD1CE);
    let workload = Workload::generate(
        WorkloadKind::Even,
        None,
        8,
        &JobDemandModel {
            rounds_mean: 3.0,
            rounds_max: 6,
            demand_mean: 10.0,
            demand_max: 20,
            ..JobDemandModel::default()
        },
        10.0 * MINUTE_MS as f64,
        &mut rng,
    );
    Experiment {
        sim: SimConfig {
            seed,
            ..SimConfig::small()
        },
        workload,
    }
}

/// Every `SchedKind` variant, including the Fig. 11 ablation arms and an
/// explicitly configured Venn.
fn every_sched_kind() -> Vec<SchedKind> {
    vec![
        SchedKind::Random,
        SchedKind::Fifo,
        SchedKind::Srsf,
        SchedKind::Venn,
        SchedKind::VennWoSched,
        SchedKind::VennWoMatch,
        SchedKind::VennWith(VennConfig::with_fairness(2.0)),
    ]
}

#[test]
fn every_sched_kind_runs_and_is_deterministic() {
    let exp = small_experiment(21);
    for kind in every_sched_kind() {
        let a = run(&exp, kind);
        let b = run(&exp, kind);
        assert_eq!(a.records, b.records, "{kind:?} must be deterministic");
        assert_eq!(a.assignments, b.assignments, "{kind:?}");
        assert_eq!(a.aborted_rounds, b.aborted_rounds, "{kind:?}");
        assert_eq!(a.events, b.events, "{kind:?}");
        assert_eq!(a.records.len(), exp.workload.jobs.len(), "{kind:?}");
        assert!(
            a.completion_rate() > 0.5,
            "{kind:?} completed only {:.2}",
            a.completion_rate()
        );
    }
}

#[test]
fn parallel_matrix_matches_sequential_on_a_twelve_plus_run_sweep() {
    // 2 scenarios × 2 seeds × 4 schedulers = 16 independent runs.
    let kinds = [SchedKind::Fifo, SchedKind::Srsf, SchedKind::Venn];
    let matrix = Matrix::new()
        .scenario("small", small_experiment)
        .scenario("tight", |seed| {
            let mut exp = small_experiment(seed ^ 0x5A5A);
            exp.sim.population = 400;
            exp
        })
        .kinds(&with_baseline(&kinds))
        .seeds(&[31, 32]);
    assert!(matrix.cells().len() >= 12, "sweep must cover >= 12 runs");

    let par = run_matrix(&matrix);
    let seq = run_matrix_sequential(&matrix);
    assert_eq!(par.len(), seq.len());
    for (p, s) in par.iter().zip(&seq) {
        assert_eq!(p.cell, s.cell, "cell order must match");
        assert_eq!(
            p.result.records, s.result.records,
            "same seeds must give same JCTs: {:?}",
            p.cell
        );
        assert_eq!(p.result.assignments, s.result.assignments, "{:?}", p.cell);
        assert_eq!(
            p.result.aborted_rounds, s.result.aborted_rounds,
            "{:?}",
            p.cell
        );
        assert_eq!(p.result.failures, s.result.failures, "{:?}", p.cell);
        assert_eq!(p.result.events, s.result.events, "{:?}", p.cell);
    }
}

#[test]
fn matrix_scenarios_differ_and_seeds_matter() {
    let matrix = Matrix::new()
        .scenario("small", small_experiment)
        .kinds(&[SchedKind::Fifo])
        .seeds(&[41, 42]);
    let runs = run_matrix(&matrix);
    assert_eq!(runs.len(), 2);
    assert_ne!(
        runs[0].result.records, runs[1].result.records,
        "different seeds must produce different outcomes"
    );
}

#[test]
fn scenario_presets_sweep_through_the_matrix() {
    // The `venn-env` scenario axis composes with the sweep executor:
    // every (workload × environment) preset runs as a named scenario and
    // produces a complete, deterministic result.
    use venn::traces::ScenarioPreset;
    let mut matrix = Matrix::new();
    for p in ScenarioPreset::ALL {
        matrix = matrix.scenario(p.name, move |seed| {
            let mut exp = small_experiment(seed);
            exp.sim.env = p.env.config();
            exp
        });
    }
    let matrix = matrix
        .kinds(&[SchedKind::Random, SchedKind::Venn])
        .seeds(&[61]);
    let runs = run_matrix(&matrix);
    assert_eq!(runs.len(), ScenarioPreset::ALL.len() * 2);
    for r in &runs {
        assert_eq!(r.result.records.len(), 8, "{:?}", r.cell);
        let preset = ScenarioPreset::by_name(&r.cell.scenario).unwrap();
        if preset.env == venn::env::EnvPreset::Off {
            assert!(r.result.env.is_empty(), "{:?}", r.cell);
        }
    }
    // The off and chaos arms of the same scheduler/seed must differ —
    // the environment axis is live inside the sweep.
    let venn_of = |name: &str| {
        runs.iter()
            .find(|r| r.cell.scenario == name && r.cell.kind == SchedKind::Venn)
            .expect("cell present")
    };
    assert_ne!(
        venn_of("even/off").result.records,
        venn_of("even/chaos").result.records,
        "chaos must perturb outcomes"
    );
}
