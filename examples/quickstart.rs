//! Quickstart: schedule two competing CL jobs with Venn, by hand.
//!
//! Shows the core API surface without the simulator: submit requests,
//! stream device check-ins, watch the Intersection Resource Scheduling
//! plan route scarce devices to the job that needs them.
//!
//! Run: `cargo run --release --example quickstart`

use venn::core::{
    Capacity, DeviceId, DeviceInfo, JobId, Request, ResourceSpec, Scheduler, VennConfig,
    VennScheduler,
};

fn main() {
    let mut venn = VennScheduler::new(VennConfig::default());

    // Two jobs: a Keyboard-style job any device can serve, and an
    // Emoji-style job that needs high-end hardware.
    let keyboard = JobId::new(1);
    let emoji = JobId::new(2);
    venn.submit(Request::new(keyboard, ResourceSpec::any(), 3, 9), 0);
    venn.submit(Request::new(emoji, ResourceSpec::new(0.5, 0.5), 3, 6), 0);

    // Devices check in over time: a mix of low-end and high-end hardware.
    // Even-indexed devices are high-end (eligible for both jobs).
    println!("device  capacity      -> assigned job");
    for i in 0..10u64 {
        let capacity = if i % 2 == 0 {
            Capacity::new(0.9, 0.8)
        } else {
            Capacity::new(0.3, 0.2)
        };
        let device = DeviceInfo::new(DeviceId::new(i), capacity);
        let now = 1_000 * (i + 1);
        venn.on_check_in(&device, now);
        let assigned = venn.assign(&device, now);
        println!(
            "dev-{i}   {capacity}  -> {}",
            assigned.map_or("idle".to_string(), |j| j.to_string())
        );
    }

    // Scarce high-end devices went to the Emoji job; the Keyboard job was
    // served from the abundant low-end pool — the Fig. 3 insight.
    println!(
        "\npending demand: keyboard={:?} emoji={:?}",
        venn.pending_demand(keyboard),
        venn.pending_demand(emoji)
    );
    assert_eq!(venn.pending_demand(emoji), Some(0), "emoji fully served");
    assert_eq!(
        venn.pending_demand(keyboard),
        Some(0),
        "keyboard fully served"
    );
}
