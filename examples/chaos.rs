//! Drive one workload through every `venn-env` scenario preset — from
//! the becalmed default to the kitchen-sink `chaos` mix — and watch the
//! environment dynamics show up in the results: injected supply surges,
//! stretched straggler responses, forced offlines, and storm-aborted
//! rounds, all reproducible per seed.
//!
//! Run: `cargo run --release --example chaos`

use rand::rngs::StdRng;
use rand::SeedableRng;

use venn::baselines::BaselineScheduler;
use venn::env::EnvPreset;
use venn::sim::{SimConfig, Simulation};
use venn::traces::Workload;

fn main() {
    let mut rng = StdRng::seed_from_u64(11);
    let workload = Workload::default_scenario(8, &mut rng);

    println!(
        "{:<16} {:>7} {:>9} {:>9} {:>8} {:>7} {:>7}",
        "env preset", "done", "avg JCT m", "aborted", "dropout", "offln", "storms"
    );
    for preset in EnvPreset::ALL {
        let config = SimConfig {
            population: 1_500,
            days: 5,
            env: preset.config(),
            ..SimConfig::default()
        };
        let mut scheduler = BaselineScheduler::fifo();
        let result = Simulation::new(config).run(&workload, &mut scheduler);
        let e = &result.env;
        println!(
            "{:<16} {:>7} {:>9.1} {:>9} {:>8} {:>7} {:>7}",
            preset.label(),
            result.breakdown().finished(),
            result.avg_jct_ms() / 60_000.0,
            result.aborted_rounds,
            e.dropouts,
            e.forced_offline,
            e.storm_aborts,
        );

        // Every scenario replays bit for bit for its seed.
        let mut scheduler2 = BaselineScheduler::fifo();
        let replay = Simulation::new(config).run(&workload, &mut scheduler2);
        assert_eq!(replay.records, result.records);
        assert_eq!(replay.env, result.env);
    }

    // The straggler preset fills per-tier response histograms; sketch
    // the slowest tier's distribution.
    let config = SimConfig {
        population: 1_500,
        days: 5,
        env: EnvPreset::StragglerHeavy.config(),
        ..SimConfig::default()
    };
    let mut scheduler = BaselineScheduler::fifo();
    let result = Simulation::new(config).run(&workload, &mut scheduler);
    let tiers = &result.env.tier_response_ms;
    println!("\nper-tier counted responses (straggler-heavy):");
    for (tier, h) in tiers.iter().enumerate() {
        println!("  tier {tier}: {}", h.total());
    }
    if let Some(h) = tiers.last() {
        if h.total() > 0 {
            println!("\nslowest tier response-time sketch (ms):\n{}", h.render());
        }
    }
}
