//! The starvation-prevention knob: sweep ε and watch the trade-off between
//! average JCT and large-job starvation — a miniature of the paper's
//! Figure 14 / §4.4.
//!
//! Run: `cargo run --release --example fairness_knob`

use rand::rngs::StdRng;
use rand::SeedableRng;

use venn::core::{VennConfig, VennScheduler, MINUTE_MS};
use venn::sim::{SimConfig, Simulation};
use venn::traces::{JobDemandModel, Workload, WorkloadKind};

fn main() {
    let mut rng = StdRng::seed_from_u64(21);
    let workload = Workload::generate(
        WorkloadKind::Even,
        None,
        16,
        &JobDemandModel::default(),
        10.0 * MINUTE_MS as f64,
        &mut rng,
    );
    let config = SimConfig {
        population: 2_000,
        days: 6,
        ..SimConfig::default()
    };

    // The job with the largest total demand is the starvation candidate.
    let biggest = (0..workload.jobs.len())
        .max_by_key(|&i| workload.jobs[i].total_demand())
        .expect("non-empty workload");
    println!(
        "largest job: #{} with {} device-rounds\n",
        biggest,
        workload.jobs[biggest].total_demand()
    );
    println!("epsilon   avg JCT (min)   largest job JCT (min)");
    println!("------------------------------------------------");
    for epsilon in [0.0, 1.0, 2.0, 4.0] {
        let mut venn = VennScheduler::new(VennConfig {
            epsilon,
            ..VennConfig::default()
        });
        let result = Simulation::new(config).run(&workload, &mut venn);
        let big_jct = result.records[biggest]
            .jct_ms()
            .map(|v| format!("{:.1}", v as f64 / 60_000.0))
            .unwrap_or_else(|| "unfinished".to_string());
        println!(
            "{:>7} {:>15.1} {:>23}",
            epsilon,
            result.avg_jct_ms() / 60_000.0,
            big_jct
        );
        // The scheduler exposes its fairness targets for inspection:
        let _ = venn.fair_target_of(venn_core::JobId::new(biggest as u64));
    }
    println!("\n(higher epsilon trades average JCT for protection of large jobs)");
}
