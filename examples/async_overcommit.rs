//! Asynchronous CL and overcommit: the two deployment-hardening features
//! from the paper's §5.1 / Appendix A, side by side on one workload.
//!
//! * **Async mode** — participants compute the moment they are assigned
//!   and a round aggregates as soon as the quorum of updates arrives
//!   (buffered-asynchronous FL); scheduling decisions are unchanged.
//! * **Overcommit** — jobs request `demand × (1 + α)` devices so dropouts
//!   cannot sink the 80 % quorum.
//!
//! Run: `cargo run --release --example async_overcommit`

use rand::rngs::StdRng;
use rand::SeedableRng;

use venn::core::{VennConfig, VennScheduler, MINUTE_MS};
use venn::sim::{SimConfig, Simulation};
use venn::traces::{JobDemandModel, Workload, WorkloadKind};

fn main() {
    let mut rng = StdRng::seed_from_u64(31);
    let workload = Workload::generate(
        WorkloadKind::Even,
        None,
        12,
        &JobDemandModel::default(),
        10.0 * MINUTE_MS as f64,
        &mut rng,
    );
    let base = SimConfig {
        population: 2_000,
        days: 5,
        ..SimConfig::default()
    };

    let variants: [(&str, SimConfig); 3] = [
        ("synchronous", base),
        (
            "sync + 20% overcommit",
            SimConfig {
                overcommit: 0.2,
                ..base
            },
        ),
        (
            "asynchronous",
            SimConfig {
                async_mode: true,
                ..base
            },
        ),
    ];

    println!("variant                 avg JCT (min)  aborted  failures  done");
    println!("----------------------------------------------------------------");
    for (name, config) in variants {
        let mut venn = VennScheduler::new(VennConfig::default());
        let result = Simulation::new(config).run(&workload, &mut venn);
        println!(
            "{:<23} {:>13.1} {:>8} {:>9} {:>5.0}%",
            name,
            result.avg_jct_ms() / 60_000.0,
            result.aborted_rounds,
            result.failures,
            result.completion_rate() * 100.0
        );
    }
    println!("\n(async removes round deadlines; overcommit buys dropout slack)");
}
