//! Federated-learning convergence under scheduling: drive a FedAvg job
//! with the participant sets an actual scheduler run produced — the
//! pipeline behind the paper's Figure 9.
//!
//! Run: `cargo run --release --example fl_convergence`

use rand::rngs::StdRng;
use rand::SeedableRng;

use venn::core::{JobId, SpecCategory, VennConfig, VennScheduler};
use venn::fl::{FedAvg, FedAvgConfig, FederatedDataset, FlDataConfig};
use venn::sim::{SimConfig, Simulation};
use venn::traces::{JobPlan, Workload};

const CLIENTS: usize = 120;

fn main() {
    // One 12-round FL job of 15 participants per round.
    let workload = Workload {
        jobs: vec![JobPlan {
            id: JobId::new(0),
            arrival_ms: 0,
            category: SpecCategory::General,
            rounds: 12,
            demand: 15,
            task_ms: 60_000,
        }],
    };
    let config = SimConfig {
        population: 1_000,
        days: 2,
        record_rounds: true,
        ..SimConfig::default()
    };
    let mut scheduler = VennScheduler::new(VennConfig::default());
    let result = Simulation::new(config).run(&workload, &mut scheduler);
    println!(
        "simulated {} rounds, JCT {:.1} min",
        result.rounds.len(),
        result.avg_jct_ms() / 60_000.0
    );

    // Replay the scheduled participant sets through FedAvg.
    let mut rng = StdRng::seed_from_u64(5);
    let data = FederatedDataset::generate(
        FlDataConfig {
            clients: CLIENTS,
            ..FlDataConfig::default()
        },
        &mut rng,
    );
    let mut fed = FedAvg::new(data, FedAvgConfig::default());
    println!("\nround  t (min)  participants  test accuracy");
    println!("---------------------------------------------");
    for log in &result.rounds {
        let participants: Vec<usize> = log.participants.iter().map(|d| d % CLIENTS).collect();
        fed.run_round(&participants);
        println!(
            "{:>5} {:>8.1} {:>13} {:>14.3}",
            log.round,
            log.end_ms as f64 / 60_000.0,
            participants.len(),
            fed.test_accuracy()
        );
    }
    assert!(
        fed.test_accuracy() > 0.5,
        "model should learn from scheduled rounds"
    );
}
