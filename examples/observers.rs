//! Attach pluggable observers to a simulation run: per-event tracing,
//! round logs, and completion order — without touching the kernel loop.
//!
//! Run: `cargo run --release --example observers`

use rand::rngs::StdRng;
use rand::SeedableRng;

use venn::baselines::BaselineScheduler;
use venn::sim::{CompletionLog, EventTrace, RoundRecorder, SimConfig, Simulation};
use venn::traces::Workload;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let workload = Workload::default_scenario(6, &mut rng);
    let sim = Simulation::new(SimConfig::small());
    let mut scheduler = BaselineScheduler::fifo();

    let mut trace = EventTrace::default();
    let mut rounds = RoundRecorder::default();
    let mut completions = CompletionLog::default();
    let result = sim.run_observed(
        &workload,
        &mut scheduler,
        &mut [&mut trace, &mut rounds, &mut completions],
    );

    println!("jobs finished     {}", result.breakdown().finished());
    println!("events dispatched {}", trace.total);
    println!(
        "  arrivals {}  sessions {}  check-ins {}  responses {}",
        trace.job_arrivals, trace.session_starts, trace.check_ins, trace.responses
    );
    println!("rounds observed   {}", rounds.rounds.len());
    println!("aborts observed   {}", completions.aborts);
    println!("completion order  {:?}", completions.finished);

    // Observers never perturb the run: a bare rerun matches exactly.
    let mut scheduler2 = BaselineScheduler::fifo();
    let bare = sim.run(&workload, &mut scheduler2);
    assert_eq!(bare.records, result.records);
    assert_eq!(bare.events, trace.total);
    println!("bare rerun matches: results are observer-independent");
}
