//! Multi-job contention: run the full event-driven simulation comparing
//! Venn against Random, FIFO, and SRSF on one contended workload — a
//! miniature of the paper's Table 1 pipeline.
//!
//! Run: `cargo run --release --example multi_job_contention`

use rand::rngs::StdRng;
use rand::SeedableRng;

use venn::baselines::BaselineScheduler;
use venn::core::{Scheduler, VennConfig, VennScheduler, MINUTE_MS};
use venn::sim::{SimConfig, Simulation};
use venn::traces::{JobDemandModel, Workload, WorkloadKind};

fn main() {
    // 20 jobs arriving every ~10 minutes over a 2 000-device population.
    let mut rng = StdRng::seed_from_u64(11);
    let workload = Workload::generate(
        WorkloadKind::Even,
        None,
        20,
        &JobDemandModel::default(),
        10.0 * MINUTE_MS as f64,
        &mut rng,
    );
    let config = SimConfig {
        population: 2_000,
        days: 6,
        ..SimConfig::default()
    };

    println!(
        "workload: {} jobs, {} device-rounds total\n",
        workload.jobs.len(),
        workload.total_demand()
    );
    println!("scheduler   avg JCT (min)   sched delay (min)   resp (min)   done");
    println!("-----------------------------------------------------------------");

    let mut baseline_jct = None;
    let mut schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(BaselineScheduler::random_order(1)),
        Box::new(BaselineScheduler::fifo()),
        Box::new(BaselineScheduler::srsf()),
        Box::new(VennScheduler::new(VennConfig::default())),
    ];
    for scheduler in &mut schedulers {
        let result = Simulation::new(config).run(&workload, &mut **scheduler);
        let b = result.breakdown();
        println!(
            "{:<11} {:>13.1} {:>19.1} {:>12.1} {:>6.0}%",
            result.scheduler_name,
            b.avg_jct_ms() / 60_000.0,
            b.avg_sched_delay_ms() / 60_000.0,
            b.avg_response_ms() / 60_000.0,
            result.completion_rate() * 100.0
        );
        let jct = b.avg_jct_ms();
        match baseline_jct {
            None => baseline_jct = Some(jct),
            Some(base) => {
                if result.scheduler_name == "venn" {
                    println!(
                        "\nVenn speed-up over Random: {:.2}x (paper: up to 1.88x)",
                        base / jct
                    );
                }
            }
        }
    }
}
