//! Vendored, dependency-free stand-in for `proptest` (narrow API subset).
//!
//! The build environment has no access to crates.io, so this shim provides
//! what the workspace's property tests use: the [`Strategy`] trait with
//! `prop_map` / `prop_flat_map`, range and tuple strategies,
//! [`collection::vec`], and the `proptest!` / `prop_assert!` /
//! `prop_assert_eq!` macros. Each test runs a fixed number of cases from a
//! deterministic seed. There is no shrinking: a failing case panics with
//! the case number so it can be replayed (the inputs are a pure function
//! of the seed and case index).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of random cases each `proptest!` test executes.
pub const CASES: u32 = 64;

/// Fixed seed for the deterministic test stream.
pub const SEED: u64 = 0x5EED_CAFE_F00D_D00D;

/// The RNG driving strategy generation.
pub type TestRng = StdRng;

/// Creates the deterministic RNG used by `proptest!` expansions.
pub fn test_rng() -> TestRng {
    StdRng::seed_from_u64(SEED)
}

/// A generator of random values of type `Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        MapStrategy { base: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMapStrategy<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMapStrategy { base: self, f }
    }
}

/// `prop_map` adapter.
pub struct MapStrategy<B, F> {
    base: B,
    f: F,
}

impl<B, U, F> Strategy for MapStrategy<B, F>
where
    B: Strategy,
    F: Fn(B::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.generate(rng))
    }
}

/// `prop_flat_map` adapter.
pub struct FlatMapStrategy<B, F> {
    base: B,
    f: F,
}

impl<B, S, F> Strategy for FlatMapStrategy<B, F>
where
    B: Strategy,
    S: Strategy,
    F: Fn(B::Value) -> S,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u128;
                let draw = ((rng.gen::<u64>() as u128) << 64) | rng.gen::<u64>() as u128;
                self.start + (draw % span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, u128, usize, i32, i64);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let u: f64 = rng.gen();
        (self.start + u * (self.end - self.start)).min(self.end - f64::EPSILON)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy!((A, B), (A, B, C), (A, B, C, D));

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Vector length specification: a fixed size or a half-open range.
    pub struct SizeRange(core::ops::Range<usize>);

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange(n..n + 1)
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            SizeRange(r)
        }
    }

    /// Strategy for `Vec`s of `element` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length is uniform in `len` (a range or a fixed count).
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        let SizeRange(len) = len.into();
        assert!(len.start < len.end, "empty vec length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Asserts a property; panics with the failing expression on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Asserts equality of two expressions.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+);
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running [`CASES`] deterministic random cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::test_rng();
                for case in 0..$crate::CASES {
                    let run = |rng: &mut $crate::TestRng| {
                        $(let $pat = $crate::Strategy::generate(&($strat), rng);)+
                        $body
                    };
                    let outcome = std::panic::catch_unwind(
                        std::panic::AssertUnwindSafe(|| run(&mut rng)),
                    );
                    if let Err(payload) = outcome {
                        eprintln!(
                            "proptest {}: failed at case {case} (seed {:#x})",
                            stringify!($name),
                            $crate::SEED,
                        );
                        std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u32..17, y in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.25..0.75).contains(&y));
        }

        #[test]
        fn tuples_and_vecs_compose(
            pairs in crate::collection::vec((0u64..10, 0.0f64..1.0), 1..9),
        ) {
            prop_assert!(!pairs.is_empty() && pairs.len() < 9);
            for (a, b) in &pairs {
                prop_assert!(*a < 10);
                prop_assert!((0.0..1.0).contains(b));
            }
        }

        #[test]
        fn flat_map_feeds_dependent_strategy(
            (n, xs) in (1usize..5).prop_flat_map(|n| {
                ((n..n + 1), crate::collection::vec(0u128..(1 << n), 1..4))
            }),
        ) {
            for x in &xs {
                prop_assert!(*x < (1 << n), "{x} out of range for n={n}");
            }
        }

        #[test]
        fn prop_map_transforms(v in (0u32..5).prop_map(|x| x * 3)) {
            prop_assert_eq!(v % 3, 0);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::test_rng();
        let mut b = crate::test_rng();
        let s = 0.0f64..1.0;
        for _ in 0..32 {
            assert_eq!(
                Strategy::generate(&s, &mut a),
                Strategy::generate(&s, &mut b)
            );
        }
    }
}
