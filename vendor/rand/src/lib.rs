//! Vendored, dependency-free stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no access to crates.io, so the workspace ships
//! this shim instead of the real `rand`. It implements exactly the surface
//! the Venn codebase uses — `rngs::StdRng`, `SeedableRng::seed_from_u64`,
//! and the `Rng` extension methods `gen`, `gen_range`, and `gen_bool` — on
//! top of a xoshiro256++ generator seeded via SplitMix64.
//!
//! Determinism is the only contract that matters here: the simulator
//! requires bit-for-bit reproducible streams per seed, which this provides.
//! The streams differ from upstream `rand`'s `StdRng` (ChaCha12), which is
//! fine — nothing in the repo freezes upstream byte streams.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word in the stream.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators (API-compatible subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from an `RngCore`
/// (the shim's equivalent of `Standard: Distribution<T>`).
pub trait FromRng {
    /// Draws one uniformly distributed value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl FromRng for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl FromRng for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl FromRng for usize {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl FromRng for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl FromRng for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRng for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift maps a 64-bit word onto [0, span) with
                // bias < 2^-64 per draw — negligible and deterministic.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::from_rng(rng);
        let v = self.start + u * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start.max(self.end - f64::EPSILON * self.end.abs())
        } else {
            v
        }
    }
}

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: FromRng>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Draws uniformly from `range` (half-open).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `rand`'s
    /// `StdRng`; a different stream, identical reproducibility contract).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl StdRng {
        /// The raw xoshiro256++ state words — the generator's exact stream
        /// position, for snapshot/restore of a running simulation.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator at the exact stream position captured by
        /// [`state`](StdRng::state): the restored generator produces the
        /// same continuation stream the snapshotted one would have.
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn f64_is_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let x = rng.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(0usize..3);
            assert!(y < 3);
            let z = rng.gen_range(1.5f64..2.5);
            assert!((1.5..2.5).contains(&z));
        }
        // All integer values in a small range are reachable.
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }
}
