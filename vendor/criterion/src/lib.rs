//! Vendored, dependency-free stand-in for `criterion` (narrow API subset).
//!
//! The build environment has no access to crates.io, so this shim provides
//! the benchmarking surface the workspace uses: `Criterion`,
//! `benchmark_group` / `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `Throughput`, and the `criterion_group!` /
//! `criterion_main!` macros. Timing is a simple warm-up + fixed-duration
//! measurement loop reporting ns/iter (and elements/sec when a throughput
//! is declared) — no statistics, plots, or baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP: Duration = Duration::from_millis(30);
const MEASURE: Duration = Duration::from_millis(150);

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id labelled by a single parameter value.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }

    /// An id with a function name and a parameter value.
    pub fn new<P: Display>(function: &str, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }
}

/// Per-iteration work declared for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration (reported as `elem/s`).
    Elements(u64),
    /// Bytes processed per iteration (reported as `MiB/s`).
    Bytes(u64),
}

/// Runs one benchmark routine and records its timing.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`: a short warm-up, then a fixed measurement window.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let warm_end = Instant::now() + WARMUP;
        while Instant::now() < warm_end {
            black_box(routine());
        }
        let start = Instant::now();
        let mut n = 0u64;
        loop {
            black_box(routine());
            n += 1;
            let elapsed = start.elapsed();
            if elapsed >= MEASURE {
                self.iters = n;
                self.elapsed = elapsed;
                break;
            }
        }
    }
}

fn report(name: &str, bencher: &Bencher, throughput: Option<Throughput>) {
    if bencher.iters == 0 {
        println!("{name:<40} (no iterations)");
        return;
    }
    let ns_per_iter = bencher.elapsed.as_nanos() as f64 / bencher.iters as f64;
    let mut line = format!("{name:<40} {ns_per_iter:>14.1} ns/iter");
    match throughput {
        Some(Throughput::Elements(per_iter)) => {
            let per_sec = per_iter as f64 * 1e9 / ns_per_iter;
            line.push_str(&format!("   {per_sec:>14.0} elem/s"));
        }
        Some(Throughput::Bytes(per_iter)) => {
            let mib_per_sec = per_iter as f64 * 1e9 / ns_per_iter / (1024.0 * 1024.0);
            line.push_str(&format!("   {mib_per_sec:>10.1} MiB/s"));
        }
        None => {}
    }
    println!("{line}");
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    #[allow(dead_code)]
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration work for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Benchmarks `routine` with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut routine: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        routine(&mut bencher, input);
        let name = format!("{}/{}", self.name, id.label);
        report(&name, &bencher, self.throughput);
    }

    /// Benchmarks a routine with no input.
    pub fn bench_function<F>(&mut self, id: &str, mut routine: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        routine(&mut bencher);
        let name = format!("{}/{}", self.name, id);
        report(&name, &bencher, self.throughput);
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            criterion: self,
            throughput: None,
        }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        routine(&mut bencher);
        report(name, &bencher, None);
        self
    }
}

/// Declares a function running a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        c.bench_function("noop_addition", |b| {
            let mut x = 0u64;
            b.iter(|| {
                x = x.wrapping_add(1);
                x
            });
        });
    }

    #[test]
    fn groups_run_with_inputs_and_throughput() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(100));
        g.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        g.finish();
    }
}
