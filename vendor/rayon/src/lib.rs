//! Vendored, dependency-free stand-in for `rayon` (narrow API subset).
//!
//! The build environment has no access to crates.io, so this shim provides
//! the slice of rayon the experiment harness needs — `into_par_iter()` /
//! `par_iter()`, `map`, and order-preserving `collect::<Vec<_>>()` — with
//! *real* parallelism: items are distributed over `std::thread::scope`
//! workers pulling from a shared atomic work index. Output order always
//! matches input order, so sequential and parallel execution produce
//! identical results for deterministic per-item work.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Re-exports matching `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

/// Number of worker threads to use for `len` items.
fn workers_for(len: usize) -> usize {
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    cpus.min(len).max(1)
}

/// Applies `f` to every item in parallel, preserving input order.
fn parallel_apply<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Hand out items through per-slot Mutex<Option<T>> cells so workers can
    // claim arbitrary indices without unsafe code; results return the same
    // way and are drained in input order afterwards.
    let input: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let output: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let (f, input, output, cursor) = (&f, &input, &output, &cursor);
        for _ in 0..workers_for(n) {
            scope.spawn(move || loop {
                let idx = cursor.fetch_add(1, Ordering::Relaxed);
                if idx >= n {
                    break;
                }
                let item = input[idx]
                    .lock()
                    .expect("rayon shim: poisoned input slot")
                    .take()
                    .expect("rayon shim: item claimed twice");
                let result = f(item);
                *output[idx]
                    .lock()
                    .expect("rayon shim: poisoned output slot") = Some(result);
            });
        }
    });
    output
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("rayon shim: poisoned output slot")
                .expect("rayon shim: missing result")
        })
        .collect()
}

/// A parallel iterator: a realized item vector plus a deferred pipeline.
pub trait ParallelIterator: Sized {
    /// Item type produced by the pipeline.
    type Item: Send;

    /// Runs the pipeline, returning items in input order.
    fn run(self) -> Vec<Self::Item>;

    /// Maps every item through `f` in parallel.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        Map { base: self, f }
    }

    /// Collects the results, preserving input order.
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_par_iter(self)
    }
}

/// Types constructible from a parallel iterator.
pub trait FromParallelIterator<T: Send> {
    /// Builds the collection by running the pipeline.
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self {
        iter.run()
    }
}

/// Entry point: `vec.into_par_iter()` and friends.
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;
    /// Concrete iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// Entry point for by-reference iteration: `slice.par_iter()`.
pub trait IntoParallelRefIterator<'a> {
    /// Item type (a reference).
    type Item: Send;
    /// Concrete iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Borrowing parallel iterator.
    fn par_iter(&'a self) -> Self::Iter;
}

/// Parallel iterator over an owned vector.
pub struct VecIter<T: Send> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for VecIter<T> {
    type Item = T;
    fn run(self) -> Vec<T> {
        self.items
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecIter<T>;
    fn into_par_iter(self) -> VecIter<T> {
        VecIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = VecIter<usize>;
    fn into_par_iter(self) -> VecIter<usize> {
        VecIter {
            items: self.collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = VecIter<&'a T>;
    fn par_iter(&'a self) -> VecIter<&'a T> {
        VecIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = VecIter<&'a T>;
    fn par_iter(&'a self) -> VecIter<&'a T> {
        VecIter {
            items: self.iter().collect(),
        }
    }
}

/// The `map` adapter. The mapping function runs on worker threads.
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, R, F> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(I::Item) -> R + Sync,
{
    type Item = R;
    fn run(self) -> Vec<R> {
        parallel_apply(self.base.run(), self.f)
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..1_000u64).collect();
        let out: Vec<u64> = v.into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..1_000u64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_borrows() {
        let v: Vec<u64> = (0..64).collect();
        let out: Vec<u64> = v.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, (1..=64).collect::<Vec<_>>());
    }

    #[test]
    fn range_into_par_iter() {
        let out: Vec<usize> = (0..10usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(out, vec![0, 1, 4, 9, 16, 25, 36, 49, 64, 81]);
    }

    #[test]
    fn chained_maps_compose() {
        let out: Vec<String> = (0..5usize)
            .into_par_iter()
            .map(|i| i + 1)
            .map(|i| format!("#{i}"))
            .collect();
        assert_eq!(out, vec!["#1", "#2", "#3", "#4", "#5"]);
    }

    #[test]
    fn actually_runs_on_multiple_threads() {
        // With >= 2 cores, distinct thread ids must appear for a slow map.
        let ids: Vec<std::thread::ThreadId> = (0..32usize)
            .into_par_iter()
            .map(|_| {
                std::thread::sleep(std::time::Duration::from_millis(5));
                std::thread::current().id()
            })
            .collect();
        let distinct: std::collections::HashSet<_> = ids.iter().collect();
        let cpus = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        if cpus >= 2 {
            assert!(distinct.len() >= 2, "expected parallel execution");
        }
    }
}
